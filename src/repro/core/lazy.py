"""Memoised lazy member lookup (paper, Section 5).

    "It is easy enough to modify the algorithm into a memoising lazy
    algorithm that does not compute table entries that are unnecessary: a
    request for lookup[C,m] will recursively invoke lookup[B,m] for every
    direct base class B of C if necessary; as long as the algorithm
    caches or memoizes the results of every lookup performed, this will
    not worsen the complexity of the algorithm."

The entry computation is *identical* to the eager engine's; only the
driving order differs (demand-driven recursion instead of a topological
sweep).  The recursion terminates because the CHG is acyclic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.lookup import BlueEntry, LookupStats, RedEntry, TableEntry
from repro.core.paths import OMEGA, Abstraction, Path, extend_abstraction
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.virtual_bases import virtual_bases


class LazyMemberLookup:
    """Demand-driven member lookup with memoisation.

    Produces exactly the same results as
    :class:`~repro.core.lookup.MemberLookupTable`, computing only the
    entries transitively demanded by the queries actually asked.
    """

    def __init__(
        self, graph: ClassHierarchyGraph, *, track_witnesses: bool = True
    ) -> None:
        graph.validate()
        self._graph = graph
        self._track_witnesses = track_witnesses
        self._virtual_bases = virtual_bases(graph)
        # None is a meaningful cached value: "m not visible in C".
        self._cache: dict[tuple[str, str], Optional[TableEntry]] = {}
        self.stats = LookupStats()

    def lookup(self, class_name: str, member: str) -> LookupResult:
        self._graph.direct_bases(class_name)  # validate the class name
        entry = self._entry(class_name, member)
        if entry is None:
            return not_found_result(class_name, member)
        if isinstance(entry, RedEntry):
            return unique_result(
                class_name,
                member,
                declaring_class=entry.ldc,
                least_virtual=entry.least_virtual,
                witness=entry.witness,
            )
        return ambiguous_result(
            class_name,
            member,
            blue_abstractions=entry.abstractions,
            candidates=tuple(sorted(entry.candidate_ldcs)),
        )

    def entries_computed(self) -> int:
        """Number of memoised entries, counting "not visible" results."""
        return len(self._cache)

    # ------------------------------------------------------------------

    def _entry(self, class_name: str, member: str) -> Optional[TableEntry]:
        key = (class_name, member)
        if key in self._cache:
            return self._cache[key]
        # Iterative demand-driven resolution (hierarchies can be deeper
        # than the Python recursion limit): expand uncached bases first,
        # then compute the node from its now-cached bases.
        stack: list[tuple[str, bool]] = [(class_name, False)]
        while stack:
            node, expanded = stack.pop()
            if (node, member) in self._cache:
                continue
            if expanded:
                self.stats.entries_computed += 1
                self._cache[(node, member)] = self._compute(node, member)
            else:
                stack.append((node, True))
                for edge in self._graph.direct_bases(node):
                    if (edge.base, member) not in self._cache:
                        stack.append((edge.base, False))
        return self._cache[key]

    def _compute(self, class_name: str, member: str) -> Optional[TableEntry]:
        graph = self._graph
        if graph.declares(class_name, member):
            witness = (
                Path.trivial(class_name) if self._track_witnesses else None
            )
            return RedEntry(class_name, OMEGA, witness)

        to_be_dominated: set[Abstraction] = set()
        blue_ldcs: set[str] = set()
        candidate: Optional[RedEntry] = None
        found_any = False

        for edge in graph.direct_bases(class_name):
            # Base entries are guaranteed cached by the driver in _entry.
            sub_entry = self._cache[(edge.base, member)]
            if sub_entry is None:
                continue
            found_any = True
            if isinstance(sub_entry, RedEntry):
                self.stats.red_propagations += 1
                incoming = RedEntry(
                    ldc=sub_entry.ldc,
                    least_virtual=extend_abstraction(
                        sub_entry.least_virtual, edge.base, virtual=edge.virtual
                    ),
                    witness=(
                        sub_entry.witness.extend(
                            class_name, virtual=edge.virtual
                        )
                        if sub_entry.witness is not None
                        else None
                    ),
                )
                if candidate is None:
                    candidate = incoming
                elif self._dominates(incoming.pair, candidate.pair):
                    candidate = incoming
                elif not self._dominates(candidate.pair, incoming.pair):
                    to_be_dominated.add(candidate.least_virtual)
                    to_be_dominated.add(incoming.least_virtual)
                    blue_ldcs.add(candidate.ldc)
                    blue_ldcs.add(incoming.ldc)
                    candidate = None
            else:
                for abstraction in sub_entry.abstractions:
                    self.stats.blue_propagations += 1
                    to_be_dominated.add(
                        extend_abstraction(
                            abstraction, edge.base, virtual=edge.virtual
                        )
                    )
                blue_ldcs |= sub_entry.candidate_ldcs

        if not found_any:
            return None
        if candidate is None:
            return BlueEntry(frozenset(to_be_dominated), frozenset(blue_ldcs))
        surviving = {
            abstraction
            for abstraction in to_be_dominated
            if not self._dominates(candidate.pair, (candidate.ldc, abstraction))
        }
        if not surviving:
            return candidate
        surviving.add(candidate.least_virtual)
        blue_ldcs.add(candidate.ldc)
        return BlueEntry(frozenset(surviving), frozenset(blue_ldcs))

    def _dominates(
        self, red: tuple[str, Abstraction], other: tuple[str, Abstraction]
    ) -> bool:
        self.stats.dominance_checks += 1
        l1, v1 = red
        _, v2 = other
        if isinstance(v2, str) and v2 in self._virtual_bases[l1]:
            return True
        return v1 is not OMEGA and v1 == v2
