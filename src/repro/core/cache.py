"""A generation-keyed LRU query cache in front of the lazy engine.

The lazy engine (:mod:`repro.core.lazy`) memoises *kernel entries* — the
interned red/blue values the fold computes — but every query still pays
interning, memo probing and the kernel-entry → :class:`LookupResult`
conversion.  For the module-level one-shot :func:`repro.core.lookup.lookup`
(the "millions of users hammering the same hot queries" path) this module
adds the missing O(1) front: :class:`LookupCache`, a plain LRU over
``(class, member) -> LookupResult`` with hit/miss/evict counters, wrapped
by :class:`CachedMemberLookup`.

Invalidation is *surgical* and piggybacks on the substrate's existing
staleness protocol: every mutation of a
:class:`~repro.hierarchy.graph.ClassHierarchyGraph` bumps its generation
counter, and the first query after a bump compares the compiled snapshot
the cache was filled under against the fresh one
(:func:`~repro.hierarchy.compiled.describe_delta`).  Whenever the
change is a recognisable growth step, only the keys inside
``invalidation-cone × affected-members`` are dropped — everything else
provably still answers to the same subobject graph (Definition 7) and
survives the bump, in the LRU and in the lazy engine's memo alike.
Only when the snapshots are incomparable (never the case under the
append-only graph API) does the cache fall back to the old
flush-everything policy, so a cached result still can never outlive
the hierarchy shape it was computed from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.lazy import LazyMemberLookup
from repro.core.results import LookupResult
from repro.core.semantics import DEFAULT_SEMANTICS, Semantics, get_semantics
from repro.hierarchy.compiled import (
    HierarchyLike,
    describe_delta,
    hierarchy_of,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "CacheStats",
    "CachedMemberLookup",
    "LookupCache",
    "shared_cached_lookup",
]

#: Default LRU capacity of :class:`CachedMemberLookup` — comfortably
#: larger than the hot query set of any realistic translation unit while
#: bounding worst-case memory for adversarial query streams.
DEFAULT_CACHE_SIZE = 4096


@dataclass
class CacheStats:
    """Counters for the cache's observable behaviour (reported by the
    CLI ``build`` command and asserted on by the tests).

    ``invalidations`` counts invalidation *events* — one per observed
    generation bump that found any computed state to reconcile, in the
    LRU **or** in the lazy engine's memo — whether the event was
    surgical or a full flush.  (A bump over a completely cold engine is
    not an observable event; a bump that only evicts warm memo entries
    through an empty LRU is.)  The surgical counters break an event
    down across a retirement (:meth:`LookupCache.retire` swaps in a
    fresh mapping rather than deleting out of the served one):
    ``entries_evicted`` counts the keys *retired* with the old
    snapshot's mapping because they lay inside the mutation's cone ×
    affected-members rectangle, ``entries_survived`` the keys that
    provably could not have changed and were *retained* — carried warm
    into the new snapshot's mapping — ``memo_entries_evicted`` the
    lazy-memo entries dropped from the same rectangle, and
    ``full_flushes`` the events that had to retire everything because
    the snapshots were incomparable."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries_evicted: int = 0
    entries_survived: int = 0
    memo_entries_evicted: int = 0
    full_flushes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LookupCache:
    """A bounded LRU mapping with explicit counters.

    Deliberately minimal: ``get`` / ``put`` / ``clear`` over an
    :class:`~collections.OrderedDict`, recency updated on every hit.
    Generation logic lives in :class:`CachedMemberLookup`; this class
    does not know what its keys mean.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or ``None`` — counting the hit or miss and
        marking the entry most recently used."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        elif len(data) >= self.maxsize:
            data.popitem(last=False)
            self.stats.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Retire every entry, counting one invalidation (only if there
        was anything to drop — an empty flush is not an observable
        event).  The old mapping is replaced wholesale rather than
        emptied in place, so a reader still holding it keeps a coherent
        view of the retired contents."""
        if self._data:
            self._data = OrderedDict()
            self.stats.invalidations += 1

    def retire(self, stale) -> tuple[int, int]:
        """Retire the current mapping into a fresh one, dropping every
        key for which ``stale(key)`` is true and carrying every other
        entry across in LRU order.

        This is the snapshot-publishing shape of invalidation: instead
        of deleting stale keys out of the mapping being served, the
        survivors are copied into a new mapping and the old one is
        swapped out with a single attribute assignment — a concurrent
        reader sees either the fully-old or the fully-new contents,
        never a half-retired hybrid, and the retired mapping stays
        coherent for as long as anyone holds it.  Returns the
        ``(retired, retained)`` counts."""
        fresh: OrderedDict = OrderedDict()
        retired = 0
        for key, value in self._data.items():
            if stale(key):
                retired += 1
            else:
                fresh[key] = value
        self._data = fresh
        return retired, len(fresh)

    def resize(self, maxsize: int) -> None:
        """Change the capacity in place, evicting least-recently-used
        entries (counted in ``evictions``) if the cache has to shrink
        below its current population.  Growing never drops anything."""
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        data = self._data
        while len(data) > maxsize:
            data.popitem(last=False)
            self.stats.evictions += 1


class CachedMemberLookup:
    """The lazy engine fronted by a generation-keyed :class:`LookupCache`.

    Produces exactly the same :class:`LookupResult` objects as every
    other engine; repeated queries under an unchanged hierarchy are one
    dict probe.  The invalidation contract:

    * every graph mutation bumps ``graph.generation``;
    * the first query after a bump diffs the compiled snapshots
      (:func:`~repro.hierarchy.compiled.describe_delta`) and evicts
      **only** the keys inside the mutation's invalidation cone ×
      affected member names — from the LRU and from the lazy memo —
      leaving every other cached answer warm (one event, counted in
      ``cache_stats.invalidations``; the surgical breakdown lands in
      ``entries_evicted`` / ``entries_survived``);
    * if the snapshots are incomparable (impossible through the
      append-only graph API, but the cache does not assume its callers)
      the whole cache and the lazy memo are flushed instead, counted in
      ``full_flushes`` — correctness never rides on the delta being
      recognisable;
    * queries between mutations never recompute.

    The one-at-a-time surgical twin of this policy lives in
    :class:`~repro.core.incremental.IncrementalLookupEngine`, which is
    told *which* mutation happened instead of diffing snapshots.

    ``fastpath_threshold`` opts a second tier in below the LRU: once a
    member name has accumulated that many LRU misses, its whole column
    is promoted onto the lazy engine's unambiguous fast path
    (:meth:`~repro.core.lazy.LazyMemberLookup.flatten_column`) — one
    ``O(|N|+|E|)`` flatten buys O(1) array serving for every future
    miss on that column, LRU evictions included.  Ambiguous columns
    simply fail the promotion and stay general; an invalidation that
    demotes a column resets its miss counter so it can earn promotion
    again.

    ``semantics`` selects the dispatch rule (:mod:`repro.core
    .semantics`).  The default ``"cpp-dominance"`` keeps the lazy
    engine behind the LRU; a non-default semantics has no lazy/
    incremental engine, so the cache fronts a snapshot-backed batched
    :class:`~repro.core.lookup.MemberLookupTable` under that semantics
    instead (``fastpath=True``, so certified columns are already O(1)
    below the LRU — ``fastpath_threshold`` is meaningless there and
    rejected).  Invalidation then rides
    :meth:`~repro.core.lookup.MemberLookupTable.apply_delta` — O(cone)
    at the table — plus the same surgical LRU retirement.
    """

    def __init__(
        self,
        hierarchy: HierarchyLike,
        *,
        maxsize: int = DEFAULT_CACHE_SIZE,
        track_witnesses: bool = True,
        fastpath_threshold: Optional[int] = None,
        semantics: Optional[str | Semantics] = None,
    ) -> None:
        self._graph = hierarchy_of(hierarchy)
        self._track_witnesses = track_witnesses
        if isinstance(semantics, str) or semantics is None:
            semantics = get_semantics(semantics)
        self.semantics = semantics
        self._lazy: Optional[LazyMemberLookup] = None
        self._table = None
        if semantics.name == DEFAULT_SEMANTICS:
            self._lazy = LazyMemberLookup(
                hierarchy, track_witnesses=track_witnesses
            )
        else:
            if fastpath_threshold is not None:
                raise ValueError(
                    f"semantics {semantics.name!r} fronts a batched "
                    "table whose certified columns already serve O(1) "
                    "through the flat fast path; fastpath_threshold "
                    "only tunes the lazy-engine promotion tier"
                )
            from repro.core.lookup import MemberLookupTable

            self._table = MemberLookupTable(
                hierarchy,
                track_witnesses=track_witnesses,
                mode="batched",
                fastpath=True,
                columnar=False,
                semantics=semantics,
            )
        self._cache = LookupCache(maxsize)
        self._snapshot = self._graph.compile()
        self._generation = self._graph.generation
        if fastpath_threshold is not None and fastpath_threshold < 1:
            raise ValueError("fastpath_threshold must be >= 1")
        self._fastpath_threshold = fastpath_threshold
        self._member_misses: dict[str, int] = {}

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def lazy(self) -> Optional[LazyMemberLookup]:
        """The underlying lazy engine (its ``stats`` count the actual
        kernel work; the cache's counters count what was *avoided*).
        ``None`` under a non-default semantics — see :attr:`table`."""
        return self._lazy

    @property
    def table(self):
        """The snapshot-backed batched table a non-default semantics
        fronts instead of the lazy engine; ``None`` under the default
        ``cpp-dominance`` semantics."""
        return self._table

    @property
    def generation(self) -> int:
        """The graph generation the current cache contents belong to."""
        return self._generation

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, class_name: str, member: str) -> LookupResult:
        if self._graph.generation != self._generation:
            self._invalidate()
        key = (class_name, member)
        result = self._cache.get(key)
        if result is None:
            engine = self._lazy if self._lazy is not None else self._table
            result = engine.lookup(class_name, member)
            self._cache.put(key, result)
            threshold = self._fastpath_threshold
            if threshold is not None:
                misses = self._member_misses.get(member, 0) + 1
                self._member_misses[member] = misses
                if misses == threshold:
                    self._lazy.flatten_column(member)
        return result

    def lookup_many(self, queries) -> list[LookupResult]:
        """The batch entry point: one generation check up front, then
        split the batch into LRU hits and misses and bulk-fill the
        misses — each *distinct* missing ``(class, member)`` pair is
        computed once through the lazy engine and scattered to every
        query position that asked for it, so a batch with repeats never
        recomputes inside itself.  Results are exactly what per-query
        :meth:`lookup` calls would have produced; the fast-path
        promotion counter advances once per distinct missing member
        pair (not once per repeated query), so promotion thresholds
        measure distinct cold traffic."""
        if self._graph.generation != self._generation:
            self._invalidate()
        if type(queries) is not list:
            queries = list(queries)
        cache = self._cache
        get = cache.get
        out: list[Optional[LookupResult]] = [None] * len(queries)
        misses: dict[tuple[str, str], list[int]] = {}
        for qi, query in enumerate(queries):
            key = (query[0], query[1])
            result = get(key)
            if result is None:
                bucket = misses.get(key)
                if bucket is None:
                    misses[key] = [qi]
                else:
                    bucket.append(qi)
            else:
                out[qi] = result
        if misses:
            lazy = self._lazy
            engine = lazy if lazy is not None else self._table
            threshold = self._fastpath_threshold
            member_misses = self._member_misses
            for (class_name, member), positions in misses.items():
                result = engine.lookup(class_name, member)
                cache.put((class_name, member), result)
                for qi in positions:
                    out[qi] = result
                if threshold is not None:
                    count = member_misses.get(member, 0) + 1
                    member_misses[member] = count
                    if count == threshold:
                        lazy.flatten_column(member)
        return out

    def resize(self, maxsize: int) -> None:
        """Rebound the LRU in place (see :meth:`LookupCache.resize`);
        shrinking evicts LRU-first, growing keeps everything warm."""
        self._cache.resize(maxsize)

    def _invalidate(self) -> None:
        """Reconcile the cache with the graph's current generation.

        Diffs the snapshot the cache contents were computed under
        against a fresh compile.  A recognisable growth step evicts
        exactly the ``cone × affected-member`` keys (and the same
        rectangle from the lazy memo — by string name, which also
        catches columns the old interner never saw); anything else
        flushes everything.  Either way the cache's snapshot pointer
        advances, so one bump costs one reconciliation no matter how
        many mutations it covered.

        The event is counted whenever the bump found *any* computed
        state to reconcile — LRU entries or warm memo entries alike: a
        bump observed through an empty LRU over a warm memo still
        evicts from the memo, and that work must not be invisible in
        the counters.
        """
        new = self._graph.compile()
        old = self._snapshot
        delta = describe_delta(old, new)
        stats = self._cache.stats
        if self._table is not None:
            # Table-backed (non-default semantics): the table reconciles
            # itself in O(cone) — and a SemanticsRejection raised by the
            # cone re-sweep propagates *before* any cache state moves,
            # leaving the old generation fully served.  Then retire the
            # same cone × affected rectangle from the LRU.
            self._table.apply_delta(delta)
            if delta is None:
                had_lru = len(self._cache) > 0
                self._cache.clear()  # counts the event when warm
                if had_lru:
                    stats.full_flushes += 1
            elif not delta.is_empty and len(self._cache) > 0:
                cone_names = {
                    new.class_names[cid] for cid in delta.cone_ids()
                }
                member_names = {
                    new.member_names[mid] for mid in delta.member_ids()
                }
                retired, retained = self._cache.retire(
                    lambda key: key[0] in cone_names
                    and key[1] in member_names
                )
                stats.entries_evicted += retired
                stats.entries_survived += retained
                stats.invalidations += 1
            self._snapshot = new
            self._generation = new.generation
            return
        if delta is None:
            # Incomparable snapshots: retire the whole computed state.
            memo_entries = self._lazy.entries_computed()
            had_lru = len(self._cache) > 0
            self._cache.clear()  # counts the event when the LRU was warm
            if not had_lru and memo_entries:
                stats.invalidations += 1  # memo-only state: still an event
            self._lazy = LazyMemberLookup(
                self._graph, track_witnesses=self._track_witnesses
            )
            stats.memo_entries_evicted += memo_entries
            if had_lru or memo_entries:
                stats.full_flushes += 1
            self._member_misses.clear()
        elif not delta.is_empty:
            cone_names = {
                new.class_names[cid] for cid in delta.cone_ids()
            }
            member_names = {
                new.member_names[mid] for mid in delta.member_ids()
            }
            memo_evicted = 0
            for member in member_names:
                memo_evicted += len(
                    self._lazy._evict(cone_names, member=member)
                )
                self._member_misses.pop(member, None)
            had_lru = len(self._cache) > 0
            if had_lru:
                # Retire the old snapshot's mapping: survivors (keys
                # provably outside the cone × affected rectangle) are
                # carried into the new snapshot's mapping, the rest
                # retire with the old one.
                retired, retained = self._cache.retire(
                    lambda key: key[0] in cone_names
                    and key[1] in member_names
                )
                stats.entries_evicted += retired
                stats.entries_survived += retained
            if had_lru or memo_evicted:
                stats.invalidations += 1
            stats.memo_entries_evicted += memo_evicted
        # An empty delta (memberless growth) changes no lookup answer:
        # nothing to evict, no observable event.
        self._snapshot = new
        self._generation = new.generation


def shared_cached_lookup(
    hierarchy: HierarchyLike, *, maxsize: Optional[int] = None
) -> CachedMemberLookup:
    """The per-graph shared :class:`CachedMemberLookup`, created on first
    use and stored *on the graph itself* — so its lifetime is exactly the
    graph's (no global registry to leak) and every module-level
    :func:`repro.core.lookup.lookup` call against the same hierarchy
    shares one cache.

    ``maxsize=None`` (the default, and what the one-shot ``lookup()``
    passes) means "whatever bound the cache already has" —
    :data:`DEFAULT_CACHE_SIZE` on first creation.  An *explicit*
    ``maxsize`` is honored even when the engine already exists: the
    shared LRU is resized in place (shrinking evicts LRU-first), so a
    caller asking for a small bound actually gets one instead of
    silently inheriting the first caller's capacity."""
    graph = hierarchy_of(hierarchy)
    engine = getattr(graph, "_shared_cached_lookup", None)
    if engine is None:
        engine = CachedMemberLookup(
            graph,
            maxsize=DEFAULT_CACHE_SIZE if maxsize is None else maxsize,
        )
        graph._shared_cached_lookup = engine
    elif maxsize is not None and engine._cache.maxsize != maxsize:
        engine.resize(maxsize)
    return engine
