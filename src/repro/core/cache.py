"""A generation-keyed LRU query cache in front of the lazy engine.

The lazy engine (:mod:`repro.core.lazy`) memoises *kernel entries* — the
interned red/blue values the fold computes — but every query still pays
interning, memo probing and the kernel-entry → :class:`LookupResult`
conversion.  For the module-level one-shot :func:`repro.core.lookup.lookup`
(the "millions of users hammering the same hot queries" path) this module
adds the missing O(1) front: :class:`LookupCache`, a plain LRU over
``(class, member) -> LookupResult`` with hit/miss/evict counters, wrapped
by :class:`CachedMemberLookup`.

Invalidation is *exact* and piggybacks on the substrate's existing
staleness protocol: every mutation of a
:class:`~repro.hierarchy.graph.ClassHierarchyGraph` bumps its generation
counter, and the cache records the generation each entry batch was
filled under.  A query under a newer generation flushes the cache in one
step before consulting the (self-refreshing) lazy engine — so a cached
result can never outlive the hierarchy shape it was computed from, and
an unchanged hierarchy never pays recomputation.  There is no per-entry
tracking to get wrong: the generation comparison is one integer test per
query.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.lazy import LazyMemberLookup
from repro.core.results import LookupResult
from repro.hierarchy.compiled import HierarchyLike, hierarchy_of

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "CacheStats",
    "CachedMemberLookup",
    "LookupCache",
    "shared_cached_lookup",
]

#: Default LRU capacity of :class:`CachedMemberLookup` — comfortably
#: larger than the hot query set of any realistic translation unit while
#: bounding worst-case memory for adversarial query streams.
DEFAULT_CACHE_SIZE = 4096


@dataclass
class CacheStats:
    """Counters for the cache's observable behaviour (reported by the
    CLI ``build`` command and asserted on by the tests)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LookupCache:
    """A bounded LRU mapping with explicit counters.

    Deliberately minimal: ``get`` / ``put`` / ``clear`` over an
    :class:`~collections.OrderedDict`, recency updated on every hit.
    Generation logic lives in :class:`CachedMemberLookup`; this class
    does not know what its keys mean.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or ``None`` — counting the hit or miss and
        marking the entry most recently used."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        elif len(data) >= self.maxsize:
            data.popitem(last=False)
            self.stats.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop every entry, counting one invalidation (only if there was
        anything to drop — an empty flush is not an observable event)."""
        if self._data:
            self._data.clear()
            self.stats.invalidations += 1


class CachedMemberLookup:
    """The lazy engine fronted by a generation-keyed :class:`LookupCache`.

    Produces exactly the same :class:`LookupResult` objects as every
    other engine; repeated queries under an unchanged hierarchy are one
    dict probe.  The invalidation contract:

    * every graph mutation bumps ``graph.generation``;
    * the first query after a bump flushes the whole cache *and* the
      underlying lazy memo (one event, counted in
      ``cache_stats.invalidations``) — the cache assumes nothing about
      which mutation happened, so all computed state goes;
    * queries between mutations never recompute.

    Callers that know their mutations are pure growth and want surgical
    eviction should use
    :class:`~repro.core.incremental.IncrementalLookupEngine` instead;
    this class trades eviction precision for a contract that is correct
    under *any* mutation at one integer compare per query.
    """

    def __init__(
        self,
        hierarchy: HierarchyLike,
        *,
        maxsize: int = DEFAULT_CACHE_SIZE,
        track_witnesses: bool = True,
    ) -> None:
        self._graph = hierarchy_of(hierarchy)
        self._track_witnesses = track_witnesses
        self._lazy = LazyMemberLookup(
            hierarchy, track_witnesses=track_witnesses
        )
        self._cache = LookupCache(maxsize)
        self._generation = self._graph.generation

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def lazy(self) -> LazyMemberLookup:
        """The underlying engine (its ``stats`` count the actual kernel
        work; the cache's counters count what was *avoided*)."""
        return self._lazy

    @property
    def generation(self) -> int:
        """The graph generation the current cache contents belong to."""
        return self._generation

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, class_name: str, member: str) -> LookupResult:
        generation = self._graph.generation
        if generation != self._generation:
            # Flush the LRU *and* retire the lazy engine's memo: unlike
            # the incremental engine, this cache makes no assumption
            # about *which* mutation happened (a member added to an old
            # class rewrites existing entries, not just new ones), so
            # correctness demands the whole computed state goes.  The
            # compiled snapshot itself is memoised on the graph and
            # recompiles as a delta where possible, so the flush costs
            # O(recompute-on-demand), not O(recompile).
            self._cache.clear()
            self._lazy = LazyMemberLookup(
                self._graph, track_witnesses=self._track_witnesses
            )
            self._generation = generation
        key = (class_name, member)
        result = self._cache.get(key)
        if result is None:
            result = self._lazy.lookup(class_name, member)
            self._cache.put(key, result)
        return result


def shared_cached_lookup(
    hierarchy: HierarchyLike, *, maxsize: int = DEFAULT_CACHE_SIZE
) -> CachedMemberLookup:
    """The per-graph shared :class:`CachedMemberLookup`, created on first
    use and stored *on the graph itself* — so its lifetime is exactly the
    graph's (no global registry to leak) and every module-level
    :func:`repro.core.lookup.lookup` call against the same hierarchy
    shares one cache."""
    graph = hierarchy_of(hierarchy)
    engine = getattr(graph, "_shared_cached_lookup", None)
    if engine is None:
        engine = CachedMemberLookup(graph, maxsize=maxsize)
        graph._shared_cached_lookup = engine
    return engine
