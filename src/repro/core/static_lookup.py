"""Member lookup with the static-member rule (paper, Section 6).

C++ relaxes the dominance requirement for static members (and for nested
type names and enumerators, which behave like static members): Definition
17 declares ``lookup(C, m)`` well-defined when the *maximal* set of
``Defns(C, m)`` either is a singleton, or consists of subobjects that all
share the same ``ldc`` in which ``m`` is static — because then every
maximal "candidate" refers to the one entity.

The paper's adaptation: the ``dominates`` function gains the member name
as an argument and a third clause::

    (L1, V1) dominates_m (L2, V2)  iff  V2 in virtual-bases[L1]
                                        or V1 == V2 != Ω
                                        or (L1 == L2 and m is static in L1)

Deviation documented in DESIGN.md: the paper keeps blue abstractions as
bare ``leastVirtual`` values; the third clause, however, needs the
``ldc`` of the dominated definition, so this engine enriches blue
abstractions to ``(ldc, leastVirtual)`` pairs.  The asymptotic complexity
is unchanged (the blue sets still hold at most one entry per
class-squared pair and in practice per class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.paths import OMEGA, Abstraction, Path, extend_abstraction
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.topo import topological_order
from repro.hierarchy.virtual_bases import virtual_bases


@dataclass(frozen=True)
class StaticRedEntry:
    ldc: str
    least_virtual: Abstraction
    witness: Optional[Path] = None

    @property
    def pair(self) -> tuple[str, Abstraction]:
        return (self.ldc, self.least_virtual)


@dataclass(frozen=True)
class StaticBlueEntry:
    """Blue abstractions enriched to ``(ldc, leastVirtual)`` pairs."""

    pairs: frozenset[tuple[str, Abstraction]]


StaticEntry = Union[StaticRedEntry, StaticBlueEntry]


class StaticAwareLookupTable:
    """Member lookup honouring the static-member dominance rule."""

    def __init__(self, graph: ClassHierarchyGraph) -> None:
        graph.validate()
        self._graph = graph
        self._virtual_bases = virtual_bases(graph)
        self._visible: dict[str, dict[str, None]] = {}
        self._table: dict[tuple[str, str], StaticEntry] = {}
        self._build()

    def lookup(self, class_name: str, member: str) -> LookupResult:
        self._graph.direct_bases(class_name)
        entry = self._table.get((class_name, member))
        if entry is None:
            return not_found_result(class_name, member)
        if isinstance(entry, StaticRedEntry):
            return unique_result(
                class_name,
                member,
                declaring_class=entry.ldc,
                least_virtual=entry.least_virtual,
                witness=entry.witness,
            )
        return ambiguous_result(
            class_name,
            member,
            blue_abstractions=frozenset(v for _, v in entry.pairs),
            candidates=tuple(sorted({ldc for ldc, _ in entry.pairs})),
        )

    # ------------------------------------------------------------------

    def _behaves_as_static(self, class_name: str, member: str) -> bool:
        if not self._graph.declares(class_name, member):
            return False
        return self._graph.member(class_name, member).behaves_as_static

    def _dominates(
        self,
        member: str,
        red: tuple[str, Abstraction],
        other: tuple[str, Abstraction],
    ) -> bool:
        l1, v1 = red
        l2, v2 = other
        if isinstance(v2, str) and v2 in self._virtual_bases[l1]:
            return True
        if v1 is not OMEGA and v1 == v2:
            return True
        return l1 == l2 and self._behaves_as_static(l1, member)

    def _build(self) -> None:
        graph = self._graph
        for class_name in topological_order(graph):
            visible: dict[str, None] = dict.fromkeys(
                graph.declared_members(class_name)
            )
            for edge in graph.direct_bases(class_name):
                visible.update(self._visible[edge.base])
            self._visible[class_name] = visible
            for member in visible:
                self._table[(class_name, member)] = self._compute(
                    class_name, member
                )

    def _compute(self, class_name: str, member: str) -> StaticEntry:
        graph = self._graph
        if graph.declares(class_name, member):
            return StaticRedEntry(class_name, OMEGA, Path.trivial(class_name))

        to_be_dominated: set[tuple[str, Abstraction]] = set()
        candidate: Optional[StaticRedEntry] = None

        for edge in graph.direct_bases(class_name):
            base = edge.base
            if member not in self._visible[base]:
                continue
            sub_entry = self._table[(base, member)]
            if isinstance(sub_entry, StaticRedEntry):
                incoming = StaticRedEntry(
                    ldc=sub_entry.ldc,
                    least_virtual=extend_abstraction(
                        sub_entry.least_virtual, base, virtual=edge.virtual
                    ),
                    witness=(
                        sub_entry.witness.extend(
                            class_name, virtual=edge.virtual
                        )
                        if sub_entry.witness is not None
                        else None
                    ),
                )
                if candidate is None:
                    candidate = incoming
                elif self._dominates(member, incoming.pair, candidate.pair):
                    candidate = incoming
                elif not self._dominates(member, candidate.pair, incoming.pair):
                    to_be_dominated.add(candidate.pair)
                    to_be_dominated.add(incoming.pair)
                    candidate = None
            else:
                for ldc, abstraction in sub_entry.pairs:
                    to_be_dominated.add(
                        (
                            ldc,
                            extend_abstraction(
                                abstraction, base, virtual=edge.virtual
                            ),
                        )
                    )

        if candidate is None:
            return StaticBlueEntry(frozenset(to_be_dominated))
        surviving = {
            pair
            for pair in to_be_dominated
            if not self._dominates(member, candidate.pair, pair)
        }
        if not surviving:
            return candidate
        surviving.add(candidate.pair)
        return StaticBlueEntry(frozenset(surviving))
