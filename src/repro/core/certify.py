"""Independent certification of lookup results.

Given any engine's :class:`~repro.core.results.LookupResult`, re-derive
the answer from the *definitions* (Definitions 7-9 over the materialised
subobject poset) and check the result against it — the translation-
validation pattern: trust the fast algorithm in production, but be able
to certify any single answer on demand.

A certificate for a UNIQUE result additionally checks the carried
witness: it must be a real path of the hierarchy, an element of
``DefnsPath(C, m)``, ≈-equivalent to the true winner, and its
``(ldc, leastVirtual)`` abstraction must match the result's fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.equivalence import subobject_key
from repro.core.results import LookupResult, LookupStatus
from repro.errors import InvalidPathError
from repro.hierarchy.compiled import HierarchyLike, hierarchy_of
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.reference import ReferenceLookup


@dataclass
class Certificate:
    """The outcome of certifying one result."""

    result: LookupResult
    valid: bool
    failures: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid

    def render(self) -> str:
        head = f"certificate for {self.result}:"
        if self.valid:
            return f"{head} VALID"
        lines = [f"{head} INVALID"]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def certify(
    hierarchy: HierarchyLike,
    result: LookupResult,
    *,
    reference: ReferenceLookup | None = None,
) -> Certificate:
    """Check ``result`` against the definitional semantics of
    ``lookup(result.class_name, result.member)``.

    ``result`` may come from *any* engine — the eager table in any build
    mode (per-member, batched, sharded), the lazy or cached engines, or
    the incremental engine; certification only reads the
    :class:`~repro.core.results.LookupResult` fields, and engines that do
    not track witnesses (e.g. sharded builds with witness tracking off)
    certify on status and declaring class alone.  ``hierarchy`` may be a
    mutable graph or a compiled snapshot.
    """
    graph = hierarchy_of(hierarchy)
    reference = reference if reference is not None else ReferenceLookup(graph)
    failures: list[str] = []
    truth = reference.lookup(result.class_name, result.member)

    if result.status is not truth.status:
        failures.append(
            f"status is {result.status} but the definition gives "
            f"{truth.status}"
        )
    if result.status is LookupStatus.UNIQUE and truth.is_unique:
        _check_unique(graph, result, truth, failures)
    return Certificate(result=result, valid=not failures, failures=failures)


def _check_unique(
    graph: ClassHierarchyGraph,
    result: LookupResult,
    truth: LookupResult,
    failures: list[str],
) -> None:
    if result.declaring_class != truth.declaring_class:
        failures.append(
            f"resolved to {result.declaring_class}::{result.member} but "
            f"the dominant definition is "
            f"{truth.declaring_class}::{result.member}"
        )
    witness = result.witness
    if witness is None:
        return  # engines without witness tracking certify on status alone
    try:
        witness.check_in(graph)
    except InvalidPathError as exc:
        failures.append(f"witness is not a path of the hierarchy: {exc}")
        return
    if witness.mdc != result.class_name:
        failures.append(
            f"witness ends at {witness.mdc!r}, not at the queried class"
        )
    if not graph.declares(witness.ldc, result.member):
        failures.append(
            f"witness source {witness.ldc!r} does not declare "
            f"{result.member!r}"
        )
    if truth.witness is not None and subobject_key(witness) != subobject_key(
        truth.witness
    ):
        failures.append(
            f"witness names subobject {subobject_key(witness)} but the "
            f"dominant definition lives in {subobject_key(truth.witness)}"
        )
    if result.least_virtual is not None and (
        witness.least_virtual() != result.least_virtual
    ):
        failures.append(
            "the result's leastVirtual abstraction does not match its own "
            "witness"
        )


def certify_table(
    hierarchy: HierarchyLike,
    engine,
    *,
    members: tuple[str, ...] = (),
    queries: Optional[Iterable[tuple[str, str]]] = None,
) -> list[Certificate]:
    """Certify an engine's answer for every (class, member) pair; returns
    only the *invalid* certificates (empty list = fully certified).

    ``engine`` is anything with a ``lookup(class_name, member)`` method —
    the eager table in any build mode (per-member, batched, sharded), the
    lazy, cached or incremental engines, or a baseline.  ``members``
    restricts the member names swept; ``queries`` overrides the sweep
    with an explicit iterable of ``(class, member)`` pairs (the fuzzing
    campaign certifies exactly the query surface it compared).  One
    :class:`~repro.subobjects.reference.ReferenceLookup` is shared across
    the whole certification, so subobject posets are materialised once
    per complete type.
    """
    graph = hierarchy_of(hierarchy)
    reference = ReferenceLookup(graph)
    if queries is None:
        names = members or graph.member_names()
        queries = (
            (class_name, member)
            for class_name in graph.classes
            for member in names
        )
    invalid = []
    for class_name, member in queries:
        certificate = certify(
            graph,
            engine.lookup(class_name, member),
            reference=reference,
        )
        if not certificate:
            invalid.append(certificate)
    return invalid
