"""Sharded parallel table construction over the batched sweep.

The batched driver (:func:`repro.core.kernel.batched_sweep`) already
amortises the CHG traversal across members; this module parallelises it
across *processes* by partitioning the member-id space into contiguous
shards.  Member columns are completely independent — the fold for
``(C, m)`` never reads another member's entries — so each worker can run
the full topological sweep restricted (via ``member_mask``) to its shard
and the shard rows merge by plain dict union, with no synchronisation
and no double work: the visible-member bitsets let a worker skip every
class in whose subgraph none of its members occur.

The frozen :class:`~repro.hierarchy.compiled.CompiledHierarchy` snapshot
is pickled once and shipped to each worker through the pool initializer
(not per task), so the per-shard marginal cost is one mask integer out
and one rows list back.  Workers never see the mutable source graph —
the snapshot's ``__getstate__`` drops it — which is also what makes the
snapshot picklable in the first place.

If a process pool cannot be created at all (sandboxes, missing
semaphores), the builder degrades to the serial batched sweep rather
than failing: sharding is an optimisation, never a semantic change.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.core.kernel import (
    AmbiguityCertificate,
    ConeSweepStats,
    LookupStats,
    batched_sweep,
    cone_sweep,
)
from repro.hierarchy.compiled import CompiledHierarchy

__all__ = [
    "apply_sharded_delta",
    "build_sharded_rows",
    "shard_delta_masks",
    "shard_member_masks",
]

#: Set by :func:`_init_worker` in each pool process: the unpickled
#: snapshot every shard task of that worker sweeps against.
_WORKER_CH: Optional[CompiledHierarchy] = None


def shard_member_masks(n_members: int, shards: int) -> list[int]:
    """Partition the member-id space ``0..n_members-1`` into ``shards``
    contiguous bitmasks (sizes differing by at most one).

    Contiguity matters: the generators intern related members with
    adjacent ids, so contiguous shards keep each worker's visible-class
    footprint (and hence its skip rate) coherent.
    """
    if n_members <= 0:
        return []
    shards = max(1, min(shards, n_members))
    base, extra = divmod(n_members, shards)
    masks: list[int] = []
    low = 0
    for index in range(shards):
        high = low + base + (1 if index < extra else 0)
        masks.append(((1 << high) - 1) ^ ((1 << low) - 1))
        low = high
    return masks


def shard_delta_masks(member_mask: int, shards: int) -> list[int]:
    """Partition the *set bits* of ``member_mask`` into at most
    ``shards`` contiguous bitmasks of near-equal population.

    The full-build sharder splits ``0..|M|-1``; a delta touches only
    ``|M_aff|`` member ids, so splitting the raw id range would leave
    most workers with empty shards.  Splitting the affected set keeps
    every worker busy on real columns.
    """
    bits: list[int] = []
    mask = member_mask
    while mask:
        low = mask & -mask
        mask ^= low
        bits.append(low)
    if not bits:
        return []
    shards = max(1, min(shards, len(bits)))
    base, extra = divmod(len(bits), shards)
    masks: list[int] = []
    index = 0
    for shard in range(shards):
        take = base + (1 if shard < extra else 0)
        acc = 0
        for low in bits[index : index + take]:
            acc |= low
        masks.append(acc)
        index += take
    return masks


def _init_worker(payload: bytes) -> None:
    global _WORKER_CH
    _WORKER_CH = pickle.loads(payload)


def _init_worker_pack(path: str) -> None:
    """Pool initializer that boots the worker's snapshot from a
    flatpack file instead of an unpickled payload: the hierarchy CSR
    arrays thaw straight out of the page cache, which every sibling
    worker shares — the parent ships one short path string per worker
    rather than one pickled hierarchy each."""
    global _WORKER_CH
    from repro.core.flatpack import mmap_table

    with mmap_table(path) as packed:
        _WORKER_CH = packed.thaw_hierarchy()


def _sweep_shard(
    member_mask: int, track_witnesses: bool, build_columnar: bool = False
):
    stats = LookupStats()
    certificate = AmbiguityCertificate()
    rows = batched_sweep(
        _WORKER_CH,
        member_mask=member_mask,
        stats=stats,
        track_witnesses=track_witnesses,
        certificate=certificate,
    )
    slab = None
    if build_columnar:
        # Lay the shard's columns out columnar in the worker too: the
        # interning cost parallelises with the sweep, and the parent
        # only remaps slot ids (repro.core.columnar.merge_shards).
        from repro.core.columnar import ColumnarTable

        slab = ColumnarTable.from_rows(_WORKER_CH, rows)
    return rows, stats, certificate, slab


def _sweep_delta_shard(task):
    """One worker's slice of a cone re-sweep: a fresh row list holding
    only the (shard-restricted) boundary rows, cone-swept for the
    shard's member bits.  Returns just the cone rows — everything else
    is either empty or the boundary the parent already has."""
    cone_mask, shard_mask, boundary, track_witnesses = task
    ch = _WORKER_CH
    rows: list = [None] * ch.n_classes
    for bid, row in boundary.items():
        rows[bid] = row
    stats = LookupStats()
    certificate = AmbiguityCertificate()
    sweep = cone_sweep(
        ch,
        rows,
        cone_mask=cone_mask,
        member_mask=shard_mask,
        stats=stats,
        track_witnesses=track_witnesses,
        certificate=certificate,
    )
    cone_rows: dict[int, dict] = {}
    mask = cone_mask
    while mask:
        low = mask & -mask
        mask ^= low
        cid = low.bit_length() - 1
        row = rows[cid]
        if row:
            cone_rows[cid] = row
    return cone_rows, sweep, stats, certificate


def _merge_stats(into: LookupStats, shard: LookupStats) -> None:
    """Sum the per-shard counters.  ``classes_visited`` therefore counts
    one full sweep per shard — the honest cost model of the sharded
    build, not a bug: each worker really does walk ``topo_order``."""
    into.classes_visited += shard.classes_visited
    into.entries_computed += shard.entries_computed
    into.red_propagations += shard.red_propagations
    into.blue_propagations += shard.blue_propagations
    into.dominance_checks += shard.dominance_checks


def build_sharded_rows(
    ch: CompiledHierarchy,
    *,
    stats: Optional[LookupStats] = None,
    track_witnesses: bool = True,
    max_workers: Optional[int] = None,
    shards: Optional[int] = None,
    certificate: Optional[AmbiguityCertificate] = None,
    columnar_slabs: Optional[list] = None,
    pack_path=None,
) -> list:
    """Build the full per-class rows (``rows[cid]: member id -> kernel
    entry``) by sharding the member space across a process pool.

    ``pack_path`` names a flatpack file (:mod:`repro.core.flatpack`)
    holding the same hierarchy: workers then mmap it read-only and thaw
    their snapshot from the shared page cache instead of receiving a
    pickled copy each — the caller must guarantee the pack matches
    ``ch`` (same generation), since workers sweep whatever the file
    holds.

    ``certificate`` merges each worker's per-shard ambiguity record —
    shards partition the member-id space, so the union is exactly what
    a serial :func:`batched_sweep` would have certified.

    ``columnar_slabs`` (when a list) asks each worker to also lay its
    shard out as a :class:`~repro.core.columnar.ColumnarTable` slab;
    the slabs are appended to the list for the caller to merge with
    :func:`repro.core.columnar.merge_shards`.  Serial fallbacks leave
    the list empty — the caller then builds columnar from the rows.

    ``max_workers`` defaults to ``os.cpu_count()``; ``shards`` defaults
    to the worker count (one mask per worker — more shards only help
    when member densities are very skewed).  Degenerate inputs (no
    members, one shard, one worker) and pool-creation failures all fall
    back to the serial batched sweep, so the result is identical in
    every case.
    """
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    masks = shard_member_masks(
        ch.n_members, shards if shards is not None else workers
    )
    if workers < 2 or len(masks) < 2:
        return batched_sweep(
            ch,
            stats=stats,
            track_witnesses=track_witnesses,
            certificate=certificate,
        )

    if pack_path is not None:
        initializer, initargs = _init_worker_pack, (str(pack_path),)
    else:
        payload = pickle.dumps(ch, protocol=pickle.HIGHEST_PROTOCOL)
        initializer, initargs = _init_worker, (payload,)
    try:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(masks)),
            initializer=initializer,
            initargs=initargs,
        )
    except (OSError, ValueError):  # no fork/semaphores available here
        return batched_sweep(
            ch,
            stats=stats,
            track_witnesses=track_witnesses,
            certificate=certificate,
        )
    build_columnar = columnar_slabs is not None
    with executor:
        results = list(
            executor.map(
                _sweep_shard,
                masks,
                [track_witnesses] * len(masks),
                [build_columnar] * len(masks),
            )
        )

    merged: list = [{} for _ in range(ch.n_classes)]
    for rows, shard_stats, shard_cert, slab in results:
        for cid, row in enumerate(rows):
            if row:
                if merged[cid]:
                    merged[cid].update(row)
                else:
                    merged[cid] = row
        if stats is not None:
            _merge_stats(stats, shard_stats)
        if certificate is not None:
            certificate.merge(shard_cert)
        if build_columnar and slab is not None:
            columnar_slabs.append(slab)
    return merged


def apply_sharded_delta(
    ch: CompiledHierarchy,
    rows: list,
    *,
    cone_mask: int,
    member_mask: int,
    stats: Optional[LookupStats] = None,
    track_witnesses: bool = True,
    max_workers: Optional[int] = None,
    shards: Optional[int] = None,
    certificate: Optional[AmbiguityCertificate] = None,
    copy_on_write: bool = False,
) -> ConeSweepStats:
    """The sharded builder's delta mode: shard the *affected* member
    set (not all of ``|M|``) across workers, each running
    :func:`repro.core.kernel.cone_sweep` against the frozen snapshot
    with only the shard-restricted boundary rows shipped in, then merge
    the recomputed cone rows back into ``rows`` in place.

    The boundary payload per shard is tiny by construction: the
    out-of-cone direct bases of cone classes, each row filtered to the
    shard's member bits — the cone sweep never reads anything else from
    the old table.  Degenerate shapes (one affected member, one worker)
    and pool-creation failures fall back to the serial
    :func:`cone_sweep`, identical result guaranteed.

    ``copy_on_write=True`` mirrors :func:`cone_sweep`'s snapshot mode:
    every cone row dict is replaced with a fresh copy *before* the
    stale-entry drop and the merge write into it, so the dicts of the
    list ``rows`` was copied from are never mutated and a parent
    snapshot sharing them stays coherent for concurrent readers.
    """
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    masks = shard_delta_masks(
        member_mask, shards if shards is not None else workers
    )
    if workers < 2 or len(masks) < 2:
        return cone_sweep(
            ch,
            rows,
            cone_mask=cone_mask,
            member_mask=member_mask,
            stats=stats,
            track_witnesses=track_witnesses,
            certificate=certificate,
            copy_on_write=copy_on_write,
        )

    # Boundary: the out-of-cone direct bases cone classes read from.
    boundary_ids: set[int] = set()
    cone_ids: list[int] = []
    mask = cone_mask
    while mask:
        low = mask & -mask
        mask ^= low
        cid = low.bit_length() - 1
        cone_ids.append(cid)
        for base, _virtual in ch.base_pairs[cid]:
            if not (cone_mask >> base) & 1:
                boundary_ids.add(base)

    # Drop the stale masked entries from the cone rows up front: the
    # workers return only what they recomputed and the merge below is
    # update-only, so this is what keeps removed entries removed.  In
    # copy-on-write mode the cone rows are first swapped for fresh
    # copies so the drop (and the merge below) never touches a dict a
    # parent snapshot still serves from.
    for cid in cone_ids:
        row = rows[cid]
        if copy_on_write:
            row = rows[cid] = dict(row) if row else {}
        if not row:
            continue
        pending = member_mask
        while pending:
            low = pending & -pending
            pending ^= low
            row.pop(low.bit_length() - 1, None)

    def _serial() -> ConeSweepStats:
        return cone_sweep(
            ch,
            rows,
            cone_mask=cone_mask,
            member_mask=member_mask,
            stats=stats,
            track_witnesses=track_witnesses,
            certificate=certificate,
        )

    payload = pickle.dumps(ch, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(masks)),
            initializer=_init_worker,
            initargs=(payload,),
        )
    except (OSError, ValueError):  # no fork/semaphores available here
        return _serial()
    tasks = []
    for shard_mask in masks:
        boundary = {}
        for bid in boundary_ids:
            row = rows[bid]
            if not row:
                continue
            restricted = {
                mid: entry
                for mid, entry in row.items()
                if (shard_mask >> mid) & 1
            }
            if restricted:
                boundary[bid] = restricted
        tasks.append((cone_mask, shard_mask, boundary, track_witnesses))
    with executor:
        results = list(executor.map(_sweep_delta_shard, tasks))

    cone_classes = 0
    recomputed = 0
    boundary_reads = 0
    for cone_rows, sweep, shard_stats, shard_cert in results:
        for cid, row in cone_rows.items():
            target = rows[cid]
            if target is None:
                rows[cid] = row
            else:
                target.update(row)
        cone_classes = max(cone_classes, sweep.cone_classes)
        recomputed += sweep.entries_recomputed
        boundary_reads += sweep.boundary_rows
        if stats is not None:
            _merge_stats(stats, shard_stats)
        if certificate is not None:
            certificate.merge(shard_cert)
    return ConeSweepStats(
        cone_classes=cone_classes,
        entries_recomputed=recomputed,
        boundary_rows=boundary_reads,
    )
