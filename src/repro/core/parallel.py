"""Sharded parallel table construction over the batched sweep.

The batched driver (:func:`repro.core.kernel.batched_sweep`) already
amortises the CHG traversal across members; this module parallelises it
across *processes* by partitioning the member-id space into contiguous
shards.  Member columns are completely independent — the fold for
``(C, m)`` never reads another member's entries — so each worker can run
the full topological sweep restricted (via ``member_mask``) to its shard
and the shard rows merge by plain dict union, with no synchronisation
and no double work: the visible-member bitsets let a worker skip every
class in whose subgraph none of its members occur.

The frozen :class:`~repro.hierarchy.compiled.CompiledHierarchy` snapshot
is pickled once and shipped to each worker through the pool initializer
(not per task), so the per-shard marginal cost is one mask integer out
and one rows list back.  Workers never see the mutable source graph —
the snapshot's ``__getstate__`` drops it — which is also what makes the
snapshot picklable in the first place.

If a process pool cannot be created at all (sandboxes, missing
semaphores), the builder degrades to the serial batched sweep rather
than failing: sharding is an optimisation, never a semantic change.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.core.kernel import LookupStats, batched_sweep
from repro.hierarchy.compiled import CompiledHierarchy

__all__ = [
    "build_sharded_rows",
    "shard_member_masks",
]

#: Set by :func:`_init_worker` in each pool process: the unpickled
#: snapshot every shard task of that worker sweeps against.
_WORKER_CH: Optional[CompiledHierarchy] = None


def shard_member_masks(n_members: int, shards: int) -> list[int]:
    """Partition the member-id space ``0..n_members-1`` into ``shards``
    contiguous bitmasks (sizes differing by at most one).

    Contiguity matters: the generators intern related members with
    adjacent ids, so contiguous shards keep each worker's visible-class
    footprint (and hence its skip rate) coherent.
    """
    if n_members <= 0:
        return []
    shards = max(1, min(shards, n_members))
    base, extra = divmod(n_members, shards)
    masks: list[int] = []
    low = 0
    for index in range(shards):
        high = low + base + (1 if index < extra else 0)
        masks.append(((1 << high) - 1) ^ ((1 << low) - 1))
        low = high
    return masks


def _init_worker(payload: bytes) -> None:
    global _WORKER_CH
    _WORKER_CH = pickle.loads(payload)


def _sweep_shard(member_mask: int, track_witnesses: bool):
    stats = LookupStats()
    rows = batched_sweep(
        _WORKER_CH,
        member_mask=member_mask,
        stats=stats,
        track_witnesses=track_witnesses,
    )
    return rows, stats


def _merge_stats(into: LookupStats, shard: LookupStats) -> None:
    """Sum the per-shard counters.  ``classes_visited`` therefore counts
    one full sweep per shard — the honest cost model of the sharded
    build, not a bug: each worker really does walk ``topo_order``."""
    into.classes_visited += shard.classes_visited
    into.entries_computed += shard.entries_computed
    into.red_propagations += shard.red_propagations
    into.blue_propagations += shard.blue_propagations
    into.dominance_checks += shard.dominance_checks


def build_sharded_rows(
    ch: CompiledHierarchy,
    *,
    stats: Optional[LookupStats] = None,
    track_witnesses: bool = True,
    max_workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> list:
    """Build the full per-class rows (``rows[cid]: member id -> kernel
    entry``) by sharding the member space across a process pool.

    ``max_workers`` defaults to ``os.cpu_count()``; ``shards`` defaults
    to the worker count (one mask per worker — more shards only help
    when member densities are very skewed).  Degenerate inputs (no
    members, one shard, one worker) and pool-creation failures all fall
    back to the serial batched sweep, so the result is identical in
    every case.
    """
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    masks = shard_member_masks(
        ch.n_members, shards if shards is not None else workers
    )
    if workers < 2 or len(masks) < 2:
        return batched_sweep(
            ch, stats=stats, track_witnesses=track_witnesses
        )

    payload = pickle.dumps(ch, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(masks)),
            initializer=_init_worker,
            initargs=(payload,),
        )
    except (OSError, ValueError):  # no fork/semaphores available here
        return batched_sweep(
            ch, stats=stats, track_witnesses=track_witnesses
        )
    with executor:
        results = list(
            executor.map(
                _sweep_shard, masks, [track_witnesses] * len(masks)
            )
        )

    merged: list = [{} for _ in range(ch.n_classes)]
    for rows, shard_stats in results:
        for cid, row in enumerate(rows):
            if row:
                if merged[cid]:
                    merged[cid].update(row)
                else:
                    merged[cid] = row
        if stats is not None:
            _merge_stats(stats, shard_stats)
    return merged
