"""Flat serving structures for certified-unambiguous columns (paper, §5).

Section 5 of the paper proves that member lookup costs ``O(|N| + |E|)``
per member *when no lookup of that member is ambiguous*: every visible
entry is red, so the whole blue-set machinery — and with it the general
``O(|M|·|N|·(|N|+|E|))`` bound — is dead weight.  The sweeps already
prove the precondition for free: :class:`repro.core.kernel
.AmbiguityCertificate` records, per member column, whether any blue
entry was ever stored.  This module is what that proof buys at serving
time.

A certified-unambiguous column is *flattened* out of the dict-of-dicts
table into a :class:`FlatColumn`:

* ``cells`` — a dense ``array('q')`` indexed by class id, holding an
  index into the interned slot pool (or ``-1``: not visible).  Chains
  and deep trees intern thousands of classes onto a handful of distinct
  ``(ldc, leastVirtual)`` pairs, so the pool stays tiny.
* ``slots`` — the pool of distinct ``(ldc id, leastVirtual id)`` pairs.
* ``witnesses`` — the per-class witness cons cells, *shared* with the
  kernel rows they came from, so a flattened answer carries the exact
  same representative path the row path would have produced.
* ``results`` — lazily memoised :class:`~repro.core.results
  .LookupResult` objects, one per class.  Serving a warm cell is two
  list indexes; the row path re-materialises a frozen dataclass per
  query.

A :class:`FlatTable` aggregates the flat columns behind a *persistent,
demote-only* ambiguity mask: a delta that ambiguates a column inside
its cone demotes it to the full red/blue rows for good (a cone
certificate proves nothing about out-of-cone cells, so re-promotion
would be unsound); a delta that keeps an affected column red merely
rewrites the cone cells in place; columns outside the cone are never
touched.  Brand-new columns — member names first declared by the delta,
whose whole visible footprint lies inside the cone — are the one safe
promotion and are flattened on the spot.

The structures here are a pure serving overlay: the owning engine keeps
its rows/columns authoritative (delta maintenance re-folds *them*), and
every flat answer is differentially checked against the row path and
the subobject-poset oracle by ``tests/core/test_fastpath.py`` and the
``repro.fuzz`` engine matrix.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.kernel import (
    AmbiguityCertificate,
    abstraction_name,
    witness_path,
)
from repro.core.results import (
    LookupResult,
    not_found_result,
    unique_result,
)
from repro.hierarchy.compiled import CompiledHierarchy

__all__ = [
    "AmbiguousColumnError",
    "FastPathStats",
    "FlatColumn",
    "FlatTable",
    "build_flat_table",
    "flatten_column",
]

#: ``entry_at(cid, mid)`` — however the owning engine stores its kernel
#: entries (row-major rows, column-major dicts, a lazy memo), the fast
#: path reads them through this one shape.
EntryAt = Callable[[int, int], object]


class AmbiguousColumnError(ValueError):
    """Raised when asked to flatten a column that holds a blue entry —
    the certificate said (or should have said) otherwise."""

    def __init__(self, mid: int, cid: int) -> None:
        super().__init__(
            f"column {mid} holds a blue entry at class {cid}; "
            "only certified-unambiguous columns can be flattened"
        )
        self.mid = mid
        self.cid = cid


@dataclass
class FastPathStats:
    """Serving and maintenance counters of one :class:`FlatTable`.

    ``flat_hits`` / ``fallback_hits`` split the queries the owning
    engine answered from a flat column vs. the full red/blue structures
    (ambiguous columns, unknown members); ``demotions`` counts columns
    a delta ambiguated (flat → rows, permanent), ``promotions`` counts
    brand-new columns flattened by a delta, ``cone_updates`` counts
    in-place cone rewrites of columns that stayed red."""

    flat_hits: int = 0
    fallback_hits: int = 0
    demotions: int = 0
    promotions: int = 0
    cone_updates: int = 0


class FlatColumn:
    """One certified-unambiguous member column, array-backed.

    ``cells[cid]`` indexes the interned ``slots`` pool (``-1`` = member
    not visible in that class); ``witnesses[cid]`` is the kernel's
    witness cons cell; ``results[cid]`` memoises the public
    :class:`~repro.core.results.LookupResult`.  All three are indexed
    by dense class id and grown in lockstep by :meth:`ensure_size`.
    """

    __slots__ = (
        "mid",
        "cells",
        "slots",
        "witnesses",
        "results",
        "populated",
        "_slot_ids",
    )

    def __init__(self, mid: int, n_classes: int) -> None:
        self.mid = mid
        self.cells = array("q", [-1]) * n_classes
        self.slots: list[tuple[int, int]] = []
        self.witnesses: list[object] = [None] * n_classes
        self.results: list[Optional[LookupResult]] = [None] * n_classes
        self.populated = 0
        self._slot_ids: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        """Number of populated (visible) cells — maintained
        incrementally by :meth:`set_cell`, so this is O(1), not an
        O(|classes|) scan (``FlatTable.flat_cells`` sums it per
        column)."""
        return self.populated

    def copy(self) -> "FlatColumn":
        """A private duplicate — the copy-on-write unit of snapshot
        publishing.  The arrays and the slot pool are fresh containers,
        so mutating the copy never touches this column; the witness cons
        cells and memoised results they hold are immutable values and
        stay shared by reference."""
        dup = FlatColumn.__new__(FlatColumn)
        dup.mid = self.mid
        dup.cells = array("q", self.cells)
        dup.slots = list(self.slots)
        dup.witnesses = list(self.witnesses)
        dup.results = list(self.results)
        dup.populated = self.populated
        dup._slot_ids = dict(self._slot_ids)
        return dup

    def ensure_size(self, n_classes: int) -> None:
        """Extend the arrays for class ids appended since the build;
        new classes start invisible (``-1``) until a cone update or
        flatten writes them."""
        grow = n_classes - len(self.cells)
        if grow > 0:
            self.cells.extend(array("q", [-1]) * grow)
            self.witnesses.extend([None] * grow)
            self.results.extend([None] * grow)

    def set_cell(self, cid: int, entry) -> None:
        """Write one class's cell from a kernel entry (``None`` = not
        visible; red tuple otherwise), dropping any memoised result."""
        old = self.cells[cid]
        self.results[cid] = None
        if entry is None:
            if old >= 0:
                self.populated -= 1
            self.cells[cid] = -1
            self.witnesses[cid] = None
            return
        if type(entry) is not tuple:
            raise AmbiguousColumnError(self.mid, cid)
        if old < 0:
            self.populated += 1
        pair = (entry[0], entry[1])
        slot = self._slot_ids.get(pair)
        if slot is None:
            slot = self._slot_ids[pair] = len(self.slots)
            self.slots.append(pair)
        self.cells[cid] = slot
        self.witnesses[cid] = entry[2]

    def result_at(
        self,
        ch: CompiledHierarchy,
        cid: int,
        class_name: str,
        member: str,
    ) -> LookupResult:
        """Serve ``lookup(C, m)`` from the flat cell — two list indexes
        once memoised; on the first query of a cell, materialise (and
        memoise) the result, sharing the witness cons chain with the
        kernel rows so the answer is value-identical to the row path's."""
        if cid >= len(self.cells):
            # A class id appended after this column's arrays were sized:
            # a snapshot child shares unaffected columns with its parent
            # without regrowing them, which is sound because the delta's
            # member mask contains every member visible in a new class —
            # an unaffected column therefore has no visible cell there.
            return not_found_result(class_name, member)
        result = self.results[cid]
        if result is None:
            slot = self.cells[cid]
            if slot < 0:
                result = not_found_result(class_name, member)
            else:
                ldc_id, lv_id = self.slots[slot]
                cell = self.witnesses[cid]
                result = unique_result(
                    class_name,
                    member,
                    declaring_class=ch.class_names[ldc_id],
                    least_virtual=abstraction_name(ch, lv_id),
                    witness=(
                        witness_path(ch, cell) if cell is not None else None
                    ),
                )
            self.results[cid] = result
        return result


def flatten_column(
    ch: CompiledHierarchy, mid: int, entry_at: EntryAt
) -> FlatColumn:
    """Materialise one certified-unambiguous column into a
    :class:`FlatColumn`, visiting only the classes the member is
    visible in (:meth:`CompiledHierarchy.classes_with_member` — the
    §5 ``O(|N| + |E|)`` per-member footprint, not an ``O(|N|·|M|)``
    scan).  Raises :class:`AmbiguousColumnError` on any blue entry —
    flattening trusts, but verifies, the caller's certificate."""
    column = FlatColumn(mid, ch.n_classes)
    remaining = ch.classes_with_member(mid)
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        cid = low.bit_length() - 1
        entry = entry_at(cid, mid)
        if entry is not None:
            column.set_cell(cid, entry)
    return column


class FlatTable:
    """The flat serving overlay of one table: flat columns keyed by
    member id, behind the persistent demote-only ambiguity mask.

    ``ambiguous_columns`` is monotone under delta maintenance: build
    certificates prove the whole table, but a cone certificate proves
    only the cone, so a bit once set never clears — an out-of-cone blue
    the cone sweep never saw must keep its column demoted forever.
    """

    __slots__ = ("columns", "ambiguous_columns", "stats")

    def __init__(self, ambiguous_columns: int = 0) -> None:
        self.columns: dict[int, FlatColumn] = {}
        self.ambiguous_columns = ambiguous_columns
        self.stats = FastPathStats()

    @property
    def flat_column_count(self) -> int:
        return len(self.columns)

    @property
    def ambiguous_column_count(self) -> int:
        return bin(self.ambiguous_columns).count("1")

    @property
    def flat_cells(self) -> int:
        """Total populated cells across every flat column."""
        return sum(len(column) for column in self.columns.values())

    def column_is_flat(self, mid: int) -> bool:
        return mid in self.columns

    def serve(
        self,
        ch: CompiledHierarchy,
        cid: int,
        mid: int,
        class_name: str,
        member: str,
    ) -> Optional[LookupResult]:
        """The flat answer for ``(cid, mid)``, or ``None`` when the
        column is not flat (the caller falls back to its full path).
        Counts the hit either way."""
        column = self.columns.get(mid)
        if column is None:
            self.stats.fallback_hits += 1
            return None
        self.stats.flat_hits += 1
        return column.result_at(ch, cid, class_name, member)

    def apply_delta(
        self,
        ch: CompiledHierarchy,
        cone_ids: list,
        member_ids,
        certificate: AmbiguityCertificate,
        entry_at: EntryAt,
        *,
        copy_on_write: bool = False,
    ) -> "FlatTable":
        """Bring the overlay current after the owner re-folded its cone.

        Merges the cone certificate into the persistent mask, then per
        affected member: demote (drop the flat column) if its bit is
        now set; rewrite just the cone cells if it stayed red; flatten
        from scratch if it is a brand-new column (first declared by
        this delta — its whole footprint is in the cone, so the cone
        certificate covers it entirely).

        In the default in-place mode, untouched columns' arrays are
        still grown for appended class ids (which start "not visible" —
        exactly what the fold would have said) and ``self`` is mutated
        and returned.  With ``copy_on_write=True`` nothing reachable
        from ``self`` is written: a new :class:`FlatTable` is returned
        that shares unaffected :class:`FlatColumn` objects with this one
        by reference and replaces affected columns with
        :meth:`FlatColumn.copy` duplicates before rewriting them.
        Shared columns are *not* regrown — :meth:`FlatColumn.result_at`
        bounds-guards appended class ids instead, sound because the
        delta's member mask contains every member visible in a new
        class.  The returned table's counters continue this table's, so
        demotions/promotions/cone-updates stay monotone along a
        snapshot chain.
        """
        if copy_on_write:
            target = FlatTable(self.ambiguous_columns)
            target.columns = dict(self.columns)
            target.stats = FastPathStats(**vars(self.stats))
        else:
            target = self
            for column in self.columns.values():
                column.ensure_size(ch.n_classes)
        target.ambiguous_columns |= certificate.ambiguous_columns
        stats = target.stats
        for mid in member_ids:
            if (target.ambiguous_columns >> mid) & 1:
                if target.columns.pop(mid, None) is not None:
                    stats.demotions += 1
                continue
            column = target.columns.get(mid)
            if column is None:
                target.columns[mid] = flatten_column(ch, mid, entry_at)
                stats.promotions += 1
            else:
                if copy_on_write:
                    column = column.copy()
                    target.columns[mid] = column
                column.ensure_size(ch.n_classes)
                for cid in cone_ids:
                    column.set_cell(cid, entry_at(cid, mid))
                stats.cone_updates += 1
        return target


def build_flat_table(
    ch: CompiledHierarchy,
    certificate: AmbiguityCertificate,
    entry_at: EntryAt,
) -> FlatTable:
    """Flatten every column the build certificate proved unambiguous.
    Columns with their certificate bit set stay with the full red/blue
    structures; the returned table's mask seeds the persistent
    demote-only mask."""
    table = FlatTable(ambiguous_columns=certificate.ambiguous_columns)
    for mid in range(ch.n_members):
        if (certificate.ambiguous_columns >> mid) & 1:
            continue
        table.columns[mid] = flatten_column(ch, mid, entry_at)
    return table
