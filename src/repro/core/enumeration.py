"""Exhaustive path enumeration over a CHG.

These generators are the *specification-level* tools: the number of paths
into a class can be exponential in the size of the hierarchy (this is the
very blow-up the paper's algorithm avoids), so they are used only by the
naive baselines, the reference semantics, and tests on small graphs.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.paths import Path
from repro.hierarchy.graph import ClassHierarchyGraph


def iter_paths_to(graph: ClassHierarchyGraph, target: str) -> Iterator[Path]:
    """All paths in the graph whose ``mdc`` is ``target``, including the
    trivial path.  Paths are produced in depth-first order over base
    edges, shortest (trivial) first along each branch.
    """
    graph.direct_bases(target)  # raises UnknownClassError early

    def walk(suffix: Path) -> Iterator[Path]:
        yield suffix
        for edge in graph.direct_bases(suffix.ldc):
            prefix = Path.edge(edge.base, edge.derived, virtual=edge.virtual)
            yield from walk(prefix.concat(suffix))

    yield from walk(Path.trivial(target))


def iter_paths_between(
    graph: ClassHierarchyGraph, source: str, target: str
) -> Iterator[Path]:
    """All paths from ``source`` to ``target`` (the trivial path if they
    are equal)."""
    graph.direct_bases(source)
    for path in iter_paths_to(graph, target):
        if path.ldc == source:
            yield path


def count_paths_to(graph: ClassHierarchyGraph, target: str) -> int:
    """Number of paths ending at ``target``, computed without enumeration
    (linear in the graph): ``count(X) = 1 + sum over direct bases``."""
    cache: dict[str, int] = {}

    def count(node: str) -> int:
        if node not in cache:
            cache[node] = 1 + sum(
                count(e.base) for e in graph.direct_bases(node)
            )
        return cache[node]

    return count(target)


def defns_paths(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> list[Path]:
    """``DefnsPath(C, m)`` (Definition 10): all paths ``a`` with
    ``mdc(a) == C`` and ``m`` declared in ``ldc(a)``."""
    return [
        path
        for path in iter_paths_to(graph, class_name)
        if graph.declares(path.ldc, member)
    ]
