"""Incremental member lookup under hierarchy growth.

Compilers see class hierarchies *grow* — one declaration at a time — and
re-tabulating all lookups after each declaration wastes the work the
paper's algorithm saves.  This engine extends the memoised lazy lookup
with precise cache invalidation:

* adding a class invalidates nothing (no entries exist for it yet);
* adding a member ``m`` to class ``X`` invalidates exactly the entries
  ``(D, m)`` for ``X`` and its transitive derived classes — no other
  member name's resolution can change;
* adding an edge ``B -> D`` invalidates every entry of ``D`` and its
  transitive derived classes (both the reachable definitions and the
  Lemma 4 dominance test may change for those classes, and only for
  those).

Because C++ requires bases to be complete before use, declarations only
ever extend the graph downward, so entries of unaffected classes remain
valid — the property the invalidation rules above rely on.

When one mutation invalidates a *large* set (an edge added high in a
deep hierarchy evicts every entry of a big cone), faulting those
entries back one query at a time pays the demand machinery per entry.
Above :data:`BATCH_REFILL_THRESHOLD` evicted entries, the engine
instead routes the evicted set straight into a batched cone re-fill
(:meth:`~repro.core.lazy.LazyMemberLookup.refill`) — one topological
pass per affected column seeded from the surviving boundary entries,
the demand-driven twin of
:func:`repro.core.kernel.cone_sweep`.  Below the threshold the classic
lazy behaviour stands: scattered small invalidations stay pay-as-you-go.

Recompilation of the shared :class:`~repro.hierarchy.compiled.CompiledHierarchy`
snapshot is left to the lazy engine's generation check at the next
query; pure downward growth (``add_class``) recompiles as a cheap delta,
and interned ids are stable across recompiles so the surviving memo
entries remain addressable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.lazy import LazyMemberLookup
from repro.core.results import LookupResult
from repro.errors import CycleError
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Access, Member


#: Evicted-entry count at which a mutation's invalidation is answered
#: by an eager batched refill instead of per-query lazy faulting.  The
#: crossover is where one topological pass over the cone beats the
#: per-entry demand machinery; small mutations stay pay-as-you-go.
BATCH_REFILL_THRESHOLD = 64


@dataclass
class IncrementalStats:
    mutations: int = 0
    entries_invalidated: int = 0
    batched_refills: int = 0
    entries_refilled: int = 0


class IncrementalLookupEngine:
    """A growable hierarchy with always-consistent member lookup.

    ``batch_refill_threshold`` tunes when a mutation's evicted set is
    eagerly recomputed in bulk (see the module docstring); ``None``
    disables batching entirely and every refill is lazy.
    """

    def __init__(
        self,
        graph: Optional[ClassHierarchyGraph] = None,
        *,
        batch_refill_threshold: Optional[int] = BATCH_REFILL_THRESHOLD,
    ) -> None:
        self._graph = graph if graph is not None else ClassHierarchyGraph()
        self._lazy = LazyMemberLookup(self._graph)
        self._batch_refill_threshold = batch_refill_threshold
        self.stats = IncrementalStats()

    def _invalidated(self, evicted) -> None:
        """Account one mutation's evictions, refilling in bulk when the
        set is large enough for a batched pass to win."""
        self.stats.entries_invalidated += len(evicted)
        threshold = self._batch_refill_threshold
        if threshold is not None and len(evicted) >= threshold:
            self.stats.batched_refills += 1
            self.stats.entries_refilled += self._lazy.refill(evicted)

    @property
    def graph(self) -> ClassHierarchyGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def lookup(self, class_name: str, member: str) -> LookupResult:
        return self._lazy.lookup(class_name, member)

    def cached_entries(self) -> int:
        return self._lazy.entries_computed()

    def snapshot(self, *, mode: str = "batched", fastpath: bool = True):
        """Publish the engine's current hierarchy as an immutable
        :class:`~repro.core.snapshot.TableSnapshot`.

        The incremental engine itself mutates in place (that is its
        point — precise memo invalidation under growth); this is the
        exit ramp into the serving tier: the returned snapshot is
        generation-stamped, never changes, and keeps answering for this
        generation no matter how the engine grows afterwards."""
        from repro.core.snapshot import TableSnapshot

        return TableSnapshot.build(
            self._graph, mode=mode, fastpath=fastpath
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add_class(
        self,
        name: str,
        members: Iterable[Member | str] = (),
        *,
        is_struct: bool = False,
    ) -> None:
        self._graph.add_class(name, members, is_struct=is_struct)
        self.stats.mutations += 1
        # A brand-new class has no cached entries and cannot influence
        # existing ones (nothing derives from it yet).

    def add_member(self, class_name: str, member: Member | str) -> None:
        self._graph.add_member(class_name, member)
        self.stats.mutations += 1
        name = member.name if isinstance(member, Member) else member
        affected = {class_name} | set(self._graph.descendants(class_name))
        self._invalidated(self._lazy._evict(affected, member=name))

    def add_edge(
        self,
        base: str,
        derived: str,
        *,
        virtual: bool = False,
        access: Access = Access.PUBLIC,
    ) -> None:
        if base == derived or self._graph.is_base_of(derived, base):
            raise CycleError((base, derived, base))
        self._graph.add_edge(base, derived, virtual=virtual, access=access)
        self.stats.mutations += 1
        affected = {derived} | set(self._graph.descendants(derived))
        self._invalidated(self._lazy._evict(affected))
