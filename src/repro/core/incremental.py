"""Incremental member lookup under hierarchy growth.

Compilers see class hierarchies *grow* — one declaration at a time — and
re-tabulating all lookups after each declaration wastes the work the
paper's algorithm saves.  This engine extends the memoised lazy lookup
with precise cache invalidation:

* adding a class invalidates nothing (no entries exist for it yet);
* adding a member ``m`` to class ``X`` invalidates exactly the entries
  ``(D, m)`` for ``X`` and its transitive derived classes — no other
  member name's resolution can change;
* adding an edge ``B -> D`` invalidates every entry of ``D`` and its
  transitive derived classes (both the reachable definitions and the
  Lemma 4 dominance test may change for those classes, and only for
  those).

Because C++ requires bases to be complete before use, declarations only
ever extend the graph downward, so entries of unaffected classes remain
valid — the property the invalidation rules above rely on.

Recompilation of the shared :class:`~repro.hierarchy.compiled.CompiledHierarchy`
snapshot is left to the lazy engine's generation check at the next
query; pure downward growth (``add_class``) recompiles as a cheap delta,
and interned ids are stable across recompiles so the surviving memo
entries remain addressable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.lazy import LazyMemberLookup
from repro.core.results import LookupResult
from repro.errors import CycleError
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Access, Member


@dataclass
class IncrementalStats:
    mutations: int = 0
    entries_invalidated: int = 0


class IncrementalLookupEngine:
    """A growable hierarchy with always-consistent member lookup."""

    def __init__(self, graph: Optional[ClassHierarchyGraph] = None) -> None:
        self._graph = graph if graph is not None else ClassHierarchyGraph()
        self._lazy = LazyMemberLookup(self._graph)
        self.stats = IncrementalStats()

    @property
    def graph(self) -> ClassHierarchyGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def lookup(self, class_name: str, member: str) -> LookupResult:
        return self._lazy.lookup(class_name, member)

    def cached_entries(self) -> int:
        return self._lazy.entries_computed()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add_class(
        self,
        name: str,
        members: Iterable[Member | str] = (),
        *,
        is_struct: bool = False,
    ) -> None:
        self._graph.add_class(name, members, is_struct=is_struct)
        self.stats.mutations += 1
        # A brand-new class has no cached entries and cannot influence
        # existing ones (nothing derives from it yet).

    def add_member(self, class_name: str, member: Member | str) -> None:
        self._graph.add_member(class_name, member)
        self.stats.mutations += 1
        name = member.name if isinstance(member, Member) else member
        affected = {class_name} | set(self._graph.descendants(class_name))
        self.stats.entries_invalidated += self._lazy._evict(
            affected, member=name
        )

    def add_edge(
        self,
        base: str,
        derived: str,
        *,
        virtual: bool = False,
        access: Access = Access.PUBLIC,
    ) -> None:
        if base == derived or self._graph.is_base_of(derived, base):
            raise CycleError((base, derived, base))
        self._graph.add_edge(base, derived, virtual=virtual, access=access)
        self.stats.mutations += 1
        affected = {derived} | set(self._graph.descendants(derived))
        self.stats.entries_invalidated += self._lazy._evict(affected)
