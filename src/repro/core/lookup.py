"""The member lookup algorithm — the paper's Figure 8, eager driver.

This is the primary contribution of the paper: a propagation over the CHG
in topological order that tabulates ``lookup[C, m]`` for every class ``C``
and member name ``m``, manipulating *abstractions* of paths instead of the
(possibly exponentially many) paths themselves.

* A **red** table entry ``Red (L, V)`` means the lookup is unambiguous and
  resolved to a definition with ``ldc = L`` and ``leastVirtual = V``.
* A **blue** entry ``Blue S`` means the lookup is ambiguous; ``S`` is the
  set of ``leastVirtual`` abstractions of the definitions that must still
  be dominated by any would-be winner further down the hierarchy.

Blue definitions must be propagated even though they can never win
(Section 4 explains why: a blue definition can *disqualify* a red one —
see ``lookup(H, bar)`` in the paper's Figure 5/7).

The per-entry fold itself (red/blue extension, candidate selection, the
blue-kill resolution, Lemma 4's dominance test) lives in exactly one
place — :mod:`repro.core.kernel` — operating on the interned ids of a
:class:`~repro.hierarchy.compiled.CompiledHierarchy`.  This module is
the *eager* driver, in three build modes over that one kernel:

* ``"per-member"`` — the historical driver: the Figure-8 fold run once
  per visible ``(class, member)`` pair, re-reading the class's adjacency
  per member.  Keeps full per-edge ``LookupStats`` counters (the
  complexity benchmarks rely on them) and is therefore the default.
* ``"batched"`` — :func:`repro.core.kernel.batched_sweep`: one pass over
  ``topo_order`` carrying whole per-class rows, every CSR row and bitset
  read once *total* instead of once per member (~2-3× faster full-table
  construction; see ``benchmarks/bench_batched.py``).
* ``"sharded"`` — :mod:`repro.core.parallel`: the member-id space split
  into contiguous shards, each built batched in a worker process against
  the pickled frozen snapshot, shard rows merged.
* ``"auto"`` — heuristic choice between batched and sharded by the
  ``|M|·|E|`` work estimate (:func:`resolve_build_mode`).

All modes produce identical tables (differentially tested in
``tests/core/test_engine_equivalence.py``).

Complexity (Section 5): ``O(|M| * |N| * (|N| + |E|))`` to build the whole
table, dropping to ``O((|M| + |N|) * (|N| + |E|))`` when no entry is
ambiguous; a built table answers each query in O(1).
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from repro.core.columnar import ColumnarStats, ColumnarTable
from repro.core.fastpath import FastPathStats, FlatTable, build_flat_table
from repro.core.kernel import (
    AmbiguityCertificate,
    BlueEntry,
    KernelBlue,
    LookupStats,
    RedEntry,
    TableEntry,
    batched_sweep,
    cone_sweep,
    fold_entry,
    result_from_entry,
    to_table_entry,
)
from repro.core.results import LookupResult, not_found_result
from repro.errors import UnknownClassError
from repro.core.semantics import DEFAULT_SEMANTICS, Semantics, get_semantics
from repro.core.snapshot import DeltaStats, TableSnapshot
from repro.hierarchy.compiled import (
    HierarchyDelta,
    HierarchyLike,
    compiled_of,
    describe_delta,
    hierarchy_of,
)
from repro.hierarchy.graph import ClassHierarchyGraph

__all__ = [
    "BUILD_MODES",
    "BlueEntry",
    "DeltaStats",
    "LookupStats",
    "MemberLookupTable",
    "RedEntry",
    "TableEntry",
    "TableSnapshot",
    "build_lookup_table",
    "lookup",
    "resolve_build_mode",
]

#: The accepted ``mode=`` values of :class:`MemberLookupTable` /
#: :func:`build_lookup_table`.
BUILD_MODES = ("per-member", "batched", "sharded", "auto")

#: ``|M| * |E|`` above which ``mode="auto"`` prefers the sharded
#: parallel builder: below it, the serial batched sweep finishes in well
#: under the worker-pool spin-up + snapshot-pickling cost.
AUTO_SHARD_THRESHOLD = 1 << 18


def resolve_build_mode(
    mode: str,
    ch,
    *,
    max_workers: Optional[int] = None,
) -> str:
    """Resolve ``"auto"`` to a concrete build mode for ``ch``.

    The heuristic mirrors the cost model: a batched build does
    ``Θ(|M|·|E|)`` row-extension work serially, so sharding only pays
    once that product is large enough to amortise process start-up and
    snapshot pickling — and never on a single-core machine.
    """
    if mode not in BUILD_MODES:
        raise ValueError(
            f"unknown build mode {mode!r}; expected one of {BUILD_MODES}"
        )
    if mode != "auto":
        return mode
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    if (
        workers > 1
        and ch.n_members * max(1, len(ch.base_targets)) >= AUTO_SHARD_THRESHOLD
    ):
        return "sharded"
    return "batched"


class MemberLookupTable:
    """Eagerly tabulated member lookup over a class hierarchy graph.

    Building the table runs the Figure 8 algorithm once; afterwards
    :meth:`lookup` answers any query in constant time.  Accepts either a
    mutable :class:`~repro.hierarchy.graph.ClassHierarchyGraph` (compiled
    on demand, memoised) or an already compiled
    :class:`~repro.hierarchy.compiled.CompiledHierarchy`.

    ``mode`` selects the build strategy (see the module docstring):
    ``"per-member"`` (default), ``"batched"``, ``"sharded"`` or
    ``"auto"``.  ``max_workers`` / ``shards`` tune the sharded builder
    and are ignored by the serial modes.  All modes yield identical
    query results; the per-member mode is the only one maintaining the
    full per-edge propagation counters in :attr:`stats`.

    ``fastpath`` controls the unambiguous serving overlay
    (:mod:`repro.core.fastpath`): the row-major sweeps certify per
    member column whether any entry is ambiguous, certified columns are
    flattened into array-backed :class:`~repro.core.fastpath
    .FlatColumn` structures (§5's ``O(|N|+|E|)`` regime), and
    :meth:`lookup` serves them from memoised results, falling back to
    the full red/blue rows only where ambiguity exists.  Defaults to on
    for ``mode="auto"``, opt-in for ``"batched"``/``"sharded"``, and is
    rejected for ``"per-member"`` (that driver's fold does not
    certify).  Delta maintenance keeps the overlay current — see
    :meth:`apply_delta`.

    Since the snapshot refactor this class is a *thin writer* over the
    RCU tier of :mod:`repro.core.snapshot`: in the row-major modes it
    owns the head of an immutable :class:`TableSnapshot` chain,
    :meth:`apply_delta` publishes a child snapshot built in O(delta)
    and swaps the head with a single reference assignment, and
    :meth:`lookup` captures the head once per query — so readers in
    other threads never need a lock and never observe a half-applied
    delta.  ``unsafe_inplace=True`` opts back into the historical
    mutate-in-place maintenance (single-threaded batch builds only);
    the per-member driver is inherently in-place and implies it.
    """

    def __init__(
        self,
        hierarchy: HierarchyLike,
        *,
        track_witnesses: bool = True,
        mode: str = "per-member",
        max_workers: Optional[int] = None,
        shards: Optional[int] = None,
        fastpath: Optional[bool] = None,
        unsafe_inplace: Optional[bool] = None,
        columnar=None,
        semantics: Optional[str | Semantics] = None,
    ) -> None:
        self._graph = hierarchy_of(hierarchy)
        self._ch = compiled_of(hierarchy)
        self._track_witnesses = track_witnesses
        self._max_workers = max_workers
        self._shards = shards
        if isinstance(semantics, str) or semantics is None:
            semantics = get_semantics(semantics)
        self.semantics = semantics
        if fastpath is None:
            fastpath = mode == "auto"
        resolved = resolve_build_mode(mode, self._ch, max_workers=max_workers)
        if semantics.name != DEFAULT_SEMANTICS:
            if resolved != "batched":
                raise ValueError(
                    f"semantics {semantics.name!r} only supports "
                    f"mode='batched' (resolved mode here: {resolved!r}); "
                    "the per-member and sharded drivers run the "
                    "dominance kernel"
                )
            if unsafe_inplace:
                raise ValueError(
                    f"semantics {semantics.name!r} requires "
                    "snapshot-backed maintenance; a mid-delta "
                    "SemanticsRejection must leave the published table "
                    "untouched (drop unsafe_inplace=True)"
                )
        if fastpath and resolved == "per-member":
            raise ValueError(
                "fastpath=True requires a row-major build mode "
                "('batched', 'sharded' or 'auto'); the per-member "
                "driver's fold does not certify ambiguity"
            )
        if unsafe_inplace is None:
            unsafe_inplace = resolved == "per-member"
        elif not unsafe_inplace and resolved == "per-member":
            raise ValueError(
                "the per-member driver maintains its column-major table "
                "in place; snapshot publishing needs a row-major mode "
                "('batched', 'sharded' or 'auto')"
            )
        self.unsafe_inplace = unsafe_inplace
        self.fastpath = fastpath
        if columnar is None:
            # Batch gathers ride the published snapshot chain; in-place
            # tables keep the per-query batch loop.
            columnar = not unsafe_inplace
        elif columnar and unsafe_inplace:
            raise ValueError(
                "the columnar batch layout serves published snapshots; "
                "in-place tables (unsafe_inplace=True / per-member mode) "
                "answer lookup_many with the per-query loop"
            )
        self.columnar = columnar
        self._head: Optional[TableSnapshot] = None
        self._flat: Optional[FlatTable] = None
        # Per-member mode fills a column-major interned table
        # (member id -> {class id -> entry}); the batched/sharded modes
        # produce row-major per-class rows (class id -> {member id ->
        # entry}) straight out of the sweep.  Only visible (class,
        # member) pairs are stored either way, exactly like the paper's
        # sparse table.
        self._columns: dict[int, dict[int, object]] = {}
        self._rows: Optional[list] = None
        self._public: dict[tuple[int, int], TableEntry] = {}
        self.stats = LookupStats()
        self.delta_stats = DeltaStats()
        self.mode = resolved
        self._build_full()

    def _build_full(self) -> None:
        """Build the whole table from scratch in the resolved mode."""
        self._columns = {}
        self._rows = None
        self._public = {}
        self._flat = None
        self._head = None
        self._entry_total = 0
        if not self.unsafe_inplace:
            self._head = TableSnapshot.build(
                self._ch,
                mode=self.mode,
                track_witnesses=self._track_witnesses,
                max_workers=self._max_workers,
                shards=self._shards,
                fastpath=self.fastpath,
                stats=self.stats,
                columnar=self.columnar,
                semantics=self.semantics,
            )
            self._entry_total = self._head.entry_total
            return
        certificate = AmbiguityCertificate() if self.fastpath else None
        if self.mode == "batched":
            self._rows = batched_sweep(
                self._ch,
                stats=self.stats,
                track_witnesses=self._track_witnesses,
                certificate=certificate,
            )
        elif self.mode == "sharded":
            from repro.core.parallel import build_sharded_rows

            self._rows = build_sharded_rows(
                self._ch,
                stats=self.stats,
                track_witnesses=self._track_witnesses,
                max_workers=self._max_workers,
                shards=self._shards,
                certificate=certificate,
            )
        else:
            self._build()
        if self._rows is not None:
            self._entry_total = sum(len(row) for row in self._rows)
        else:
            self._entry_total = sum(
                len(column) for column in self._columns.values()
            )
        if certificate is not None:
            self._flat = build_flat_table(
                self._ch, certificate, self._kernel_entry_at
            )

    @classmethod
    def from_snapshot(
        cls,
        snapshot: TableSnapshot,
        *,
        graph: Optional[ClassHierarchyGraph] = None,
    ) -> "MemberLookupTable":
        """Adopt an already-built :class:`TableSnapshot` as the chain
        head without rebuilding anything — how a writer boots from a
        mmapped flatpack base (:meth:`repro.core.flatpack.PackedTable
        .to_table`).

        With ``graph=None`` the table is detached: it serves and can
        chain deltas at the snapshot level, but :meth:`apply_delta`
        (which recompiles the source graph) raises until a graph is
        supplied.  When a graph is passed, its generation counter must
        line up with the snapshot's — ``to_table`` restamps the thawed
        hierarchy to guarantee exactly that."""
        table = cls.__new__(cls)
        table._graph = graph
        table._ch = snapshot.ch
        table._track_witnesses = snapshot.track_witnesses
        table._max_workers = snapshot.max_workers
        table._shards = snapshot.shards
        table.semantics = snapshot.semantics
        table.fastpath = snapshot.flat is not None
        table.unsafe_inplace = False
        table.columnar = snapshot.columnar_enabled
        table._head = snapshot
        table._flat = None
        table._columns = {}
        table._rows = None
        table._public = {}
        table.stats = LookupStats()
        table.delta_stats = DeltaStats()
        table.mode = snapshot.mode
        table._entry_total = snapshot.entry_total
        return table

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def graph(self) -> ClassHierarchyGraph:
        return self._graph

    @property
    def compiled(self):
        """The interned substrate the table was built over."""
        return self._ch

    @property
    def snapshot(self) -> Optional[TableSnapshot]:
        """The published chain head — capture it once to answer any
        number of queries against one coherent generation from any
        thread.  ``None`` for in-place tables (``unsafe_inplace=True``
        and the per-member mode), which have no published state."""
        return self._head

    @property
    def flat_table(self) -> Optional[FlatTable]:
        """The flat serving overlay (``None`` when the fast path is
        off) — inspect it for certification and routing state."""
        head = self._head
        if head is not None:
            return head.flat
        return self._flat

    @property
    def fastpath_stats(self) -> Optional[FastPathStats]:
        """Serving/maintenance counters of the fast path, or ``None``
        when it is off."""
        flat = self.flat_table
        return flat.stats if flat is not None else None

    @property
    def columnar_table(self) -> Optional[ColumnarTable]:
        """The head snapshot's dense batch-serving layout
        (:class:`~repro.core.columnar.ColumnarTable`), materialising it
        if still lazy; ``None`` for in-place tables or
        ``columnar=False``."""
        head = self._head
        if head is None:
            return None
        return head.columnar_table()

    @property
    def columnar_stats(self) -> Optional[ColumnarStats]:
        """The columnar layout's serving counters, or ``None`` when it
        is off or not yet materialised."""
        head = self._head
        if head is None:
            return None
        return head.columnar_stats()

    def lookup(self, class_name: str, member: str) -> LookupResult:
        """``lookup(C, m)`` per Definition 9, answered from the table.

        With the fast path on, certified-unambiguous columns are served
        from their flat memoised results; only ambiguous columns fall
        through to the full red/blue rows.  Snapshot-backed tables
        capture the chain head once, so the whole query runs against
        one published generation even while a writer races ahead."""
        head = self._head
        if head is not None:
            ch = head.ch
            cid = ch.class_ids.get(class_name)
            if cid is None:
                if self._graph is None:
                    # Detached table (seeded from a pack): the snapshot
                    # is the only universe of classes.
                    raise UnknownClassError(class_name)
                # Unknown to the head snapshot: defer to the live graph
                # so the error behaviour matches the mutable API.
                self._graph.direct_bases(class_name)
                return not_found_result(class_name, member)
            mid = ch.member_ids.get(member)
            if mid is None:
                return not_found_result(class_name, member)
            return head._result(cid, mid, class_name, member)
        ch = self._ch
        cid = ch.class_ids.get(class_name)
        if cid is None:
            if self._graph is None:
                raise UnknownClassError(class_name)
            # Unknown to the snapshot: defer to the live graph so the
            # error behaviour matches the mutable API exactly.
            self._graph.direct_bases(class_name)
            return not_found_result(class_name, member)
        mid = ch.member_ids.get(member)
        if mid is None:
            return not_found_result(class_name, member)
        flat = self._flat
        if flat is not None:
            result = flat.serve(ch, cid, mid, class_name, member)
            if result is not None:
                return result
        return result_from_entry(
            class_name, member, self._entry_at(cid, mid)
        )

    def lookup_many(
        self, queries
    ) -> list[LookupResult]:
        """Answer a batch of ``(class, member)`` queries coherently:
        snapshot-backed tables resolve the whole batch against one
        captured head — through its columnar vectorized gather by
        default (``columnar=False`` keeps the per-query loop) — so a
        concurrent publish can never split the batch across
        generations.  In-place tables loop per query."""
        head = self._head
        if head is not None:
            return head.lookup_many(queries)
        return [self.lookup(c, m) for c, m in queries]

    def entry(self, class_name: str, member: str) -> Optional[TableEntry]:
        """The raw Red/Blue table entry (``None`` if ``m`` is not a member
        of any subobject of ``C``) — matches the paper's Figures 6-7."""
        head = self._head
        if head is not None:
            return head.entry(class_name, member)
        ch = self._ch
        cid = ch.class_ids.get(class_name)
        mid = ch.member_ids.get(member)
        if cid is None or mid is None:
            return None
        return self._entry_at(cid, mid)

    def visible_members(self, class_name: str) -> tuple[str, ...]:
        """``Members[C]``: names declared in ``C`` or inherited from any
        base, in the deterministic order the algorithm produced them."""
        ch = self._ch
        cid = ch.class_ids[class_name]
        names = ch.member_names
        return tuple(names[mid] for mid in ch.ordered_visible(cid))

    def all_entries(self) -> Mapping[tuple[str, str], TableEntry]:
        """Every table entry, keyed on ``(class, member)`` names."""
        head = self._head
        if head is not None:
            return head.all_entries()
        ch = self._ch
        class_names = ch.class_names
        member_names = ch.member_names
        out: dict[tuple[str, str], TableEntry] = {}
        for cid in ch.topo_order:
            cname = class_names[cid]
            for mid in ch.ordered_visible(cid):
                out[(cname, member_names[mid])] = self._entry_at(cid, mid)
        return out

    def ambiguous_queries(self) -> tuple[tuple[str, str], ...]:
        """All ``(class, member)`` pairs whose lookup is ambiguous."""
        head = self._head
        if head is not None:
            return head.ambiguous_queries()
        ch = self._ch
        class_names = ch.class_names
        member_names = ch.member_names
        return tuple(
            (class_names[cid], member_names[mid])
            for cid in ch.topo_order
            for mid in ch.ordered_visible(cid)
            if type(self._kentry(cid, mid)) is KernelBlue
        )

    # ------------------------------------------------------------------
    # Delta maintenance (cone-restricted re-sweeps)
    # ------------------------------------------------------------------

    def apply_delta(
        self, delta: Optional[HierarchyDelta] = None
    ) -> DeltaStats:
        """Bring the table up to date with the source graph's current
        generation by re-folding **only** the invalidation cone ×
        affected members, instead of rebuilding all ``|N| × |M|``.

        The machinery: recompile the graph (the delta recompile keeps
        every interned id stable), describe what changed as a
        :class:`~repro.hierarchy.compiled.HierarchyDelta` (or accept
        one precomputed by the caller), and re-run the fold over cone
        classes in topological order seeded from the surviving boundary
        rows — :func:`repro.core.kernel.cone_sweep` for the row-major
        modes, a cone-restricted :func:`fold_entry` walk per affected
        column for the per-member mode, and the member-sharded
        :func:`repro.core.parallel.apply_sharded_delta` for the sharded
        mode.  Entries outside ``cone × affected`` are never touched;
        their memoised public conversions survive too.

        When the snapshots are incomparable (ids would shift — never
        the case under the append-only graph API) the table falls back
        to a full rebuild in its own mode, so ``apply_delta`` is always
        safe to call.  Returns the :class:`DeltaStats` of this one
        application; the running totals accumulate on
        :attr:`delta_stats`.

        With the fast path on, the cone re-sweep also re-certifies the
        affected columns: a delta that ambiguates a previously-flat
        column demotes it to the full rows (permanently — the cone
        certificate proves nothing out-of-cone), one that keeps it red
        rewrites only the cone cells of the flat column, and flat
        columns outside the cone are untouched.

        Snapshot-backed tables (the row-major default) run the same
        cone machinery in copy-on-write mode through
        :meth:`TableSnapshot.apply_delta`: the delta lands in a fresh
        child snapshot sharing all out-of-cone state with the current
        head, which is then published by one atomic reference swap —
        concurrent readers never lock and never see a torn table.
        In-place tables (``unsafe_inplace=True`` / per-member mode)
        mutate their own rows exactly as before.
        """
        if self._graph is None:
            raise ValueError(
                "apply_delta needs the live source graph; this table was "
                "built over a detached CompiledHierarchy snapshot"
            )
        old = self._ch
        new = self._graph.compile()
        result = DeltaStats()
        if new.generation == old.generation:
            return result  # nothing happened since the last (re)build
        if delta is None:
            delta = describe_delta(old, new)
        head = self._head
        if head is not None:
            # Snapshot mode: build the child off to the side (sharing
            # everything out-of-cone with the parent), then publish it
            # with a single reference swap — readers capturing the head
            # see either the old generation or the new one, never a
            # half-applied delta.
            child = head.apply_delta(new, delta, stats=self.stats)
            self._head = child
            self._ch = new
            self._entry_total = child.entry_total
            result = child.delta_stats
            self.delta_stats.accumulate(result)
            return result
        if delta is None:
            self._ch = new
            self._build_full()
            result.deltas_applied = 1
            result.full_rebuilds = 1
            self.delta_stats.accumulate(result)
            return result

        self._ch = new
        result.deltas_applied = 1
        result.cone_classes = delta.cone_size
        result.affected_members = delta.member_count
        cone = delta.cone_mask
        mmask = delta.member_mask

        # Surgically drop the memoised public conversions of cone ×
        # affected pairs; everything else stays warm.  Iterate whichever
        # side is smaller: the cone × member product or the memo itself.
        if self._public:
            public = self._public
            if delta.cone_size * delta.member_count < len(public):
                for cid in delta.cone_ids():
                    for mid in delta.member_ids():
                        public.pop((cid, mid), None)
            else:
                stale = [
                    key
                    for key in public
                    if (cone >> key[0]) & 1 and (mmask >> key[1]) & 1
                ]
                for key in stale:
                    del public[key]

        if self._rows is not None:
            rows = self._rows
            first_new_row = len(rows)
            if first_new_row < new.n_classes:
                # New class ids: cone_sweep fills them; memberless new
                # classes (an empty delta's only growth) get empty rows.
                rows.extend([None] * (new.n_classes - first_new_row))
            cone_ids = list(delta.cone_ids())
            before = sum(
                len(rows[cid])
                for cid in cone_ids
                if rows[cid] is not None
            )
            certificate = (
                AmbiguityCertificate() if self._flat is not None else None
            )
            if not delta.is_empty:
                if self.mode == "sharded":
                    from repro.core.parallel import apply_sharded_delta

                    sweep = apply_sharded_delta(
                        new,
                        self._rows,
                        cone_mask=cone,
                        member_mask=mmask,
                        stats=self.stats,
                        track_witnesses=self._track_witnesses,
                        max_workers=self._max_workers,
                        shards=self._shards,
                        certificate=certificate,
                    )
                else:
                    sweep = cone_sweep(
                        new,
                        self._rows,
                        cone_mask=cone,
                        member_mask=mmask,
                        stats=self.stats,
                        track_witnesses=self._track_witnesses,
                        certificate=certificate,
                    )
                result.entries_recomputed = sweep.entries_recomputed
                result.boundary_rows = sweep.boundary_rows
            for cid in range(first_new_row, new.n_classes):
                if rows[cid] is None:
                    rows[cid] = {}
            if self._flat is not None:
                # The cone certificate demotes newly-ambiguated columns,
                # cone-updates columns that stayed red, flattens brand-new
                # ones, and grows every untouched column's arrays for the
                # appended class ids.
                self._flat.apply_delta(
                    new,
                    cone_ids,
                    list(delta.member_ids()),
                    certificate,
                    self._kernel_entry_at,
                )
            after = sum(len(rows[cid]) for cid in cone_ids)
            self._entry_total += after - before
        else:
            columns = self._columns
            cone_ids = list(delta.cone_ids())
            member_ids = list(delta.member_ids())
            before = sum(
                1
                for mid in member_ids
                for cid in cone_ids
                if cid in columns.get(mid, ())
            )
            if not delta.is_empty:
                result.entries_recomputed = self._refold_columns(delta)
                result.boundary_rows = self._count_boundary(delta)
            after = sum(
                1
                for mid in member_ids
                for cid in cone_ids
                if cid in columns.get(mid, ())
            )
            self._entry_total += after - before
        result.entries_reused = max(
            0, self._entry_total - result.entries_recomputed
        )
        self.delta_stats.accumulate(result)
        return result

    def _refold_columns(self, delta: HierarchyDelta) -> int:
        """Per-member-mode cone refold: for each affected column, rerun
        :func:`fold_entry` over the cone in topo order.  ``column.get``
        hands the fold the out-of-cone boundary entries verbatim — the
        same invariant as :func:`cone_sweep`, one column at a time."""
        ch = self._ch
        stats = self.stats
        track = self._track_witnesses
        columns = self._columns
        visible_masks = ch.visible_masks
        cone_ids = sorted(
            delta.cone_ids(), key=ch.topo_positions.__getitem__
        )
        recomputed = 0
        for mid in delta.member_ids():
            column = columns.get(mid)
            if column is None:
                column = columns[mid] = {}
            for cid in cone_ids:
                if not (visible_masks[cid] >> mid) & 1:
                    column.pop(cid, None)
                    continue
                stats.entries_computed += 1
                recomputed += 1
                column[cid] = fold_entry(
                    ch, cid, mid, column.get, stats, track
                )
        return recomputed

    def _count_boundary(self, delta: HierarchyDelta) -> int:
        """Out-of-cone direct bases read as seeds by a cone refold."""
        ch = self._ch
        cone = delta.cone_mask
        count = 0
        for cid in delta.cone_ids():
            for base, _virtual in ch.base_pairs[cid]:
                if not (cone >> base) & 1:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # The eager driver (the fold itself lives in repro.core.kernel)
    # ------------------------------------------------------------------

    def _build(self) -> None:
        ch = self._ch
        stats = self.stats
        track = self._track_witnesses
        columns = self._columns
        visible_masks = ch.visible_masks
        for cid in ch.topo_order:
            stats.classes_visited += 1
            mask = visible_masks[cid]
            while mask:
                low = mask & -mask
                mask ^= low
                mid = low.bit_length() - 1
                column = columns.get(mid)
                if column is None:
                    column = columns[mid] = {}
                stats.entries_computed += 1
                column[cid] = fold_entry(
                    ch, cid, mid, column.get, stats, track
                )

    def _kentry(self, cid: int, mid: int):
        """The raw kernel entry, whichever layout the build produced."""
        if self._rows is not None:
            return self._rows[cid].get(mid)
        return self._columns.get(mid, {}).get(cid)

    def _kernel_entry_at(self, cid: int, mid: int):
        """Row read tolerant of unfilled rows — the ``entry_at`` shape
        the fast path flattens and cone-updates through."""
        row = self._rows[cid]
        return row.get(mid) if row else None

    def _entry_at(self, cid: int, mid: int) -> Optional[TableEntry]:
        kentry = self._kentry(cid, mid)
        if kentry is None:
            return None
        key = (cid, mid)
        public = self._public.get(key)
        if public is None:
            public = self._public[key] = to_table_entry(self._ch, kentry)
        return public


def build_lookup_table(
    hierarchy: HierarchyLike,
    *,
    track_witnesses: bool = True,
    mode: str = "per-member",
    max_workers: Optional[int] = None,
    shards: Optional[int] = None,
    fastpath: Optional[bool] = None,
    unsafe_inplace: Optional[bool] = None,
    columnar=None,
    semantics: Optional[str | Semantics] = None,
) -> MemberLookupTable:
    """Run the paper's ``doLookup()`` and return the filled table.

    ``mode="auto"`` picks the serial batched sweep or the sharded
    parallel builder by the ``|M|·|E|`` work estimate; see the module
    docstring for the full mode list and the ``fastpath`` default.
    Row-major tables maintain an immutable snapshot chain by default
    (lock-free concurrent reads); ``unsafe_inplace=True`` restores the
    historical mutate-in-place delta maintenance.  ``columnar``
    (default: on for snapshot-backed tables) governs the dense batch
    layout behind ``lookup_many`` — ``True`` lazy, ``"eager"`` built
    with the table, ``False`` per-query loop.  ``semantics`` selects
    the dispatch rule (:mod:`repro.core.semantics`; default the
    paper's ``"cpp-dominance"``); non-default semantics are
    batched-mode, snapshot-backed only.
    """
    return MemberLookupTable(
        hierarchy,
        track_witnesses=track_witnesses,
        mode=mode,
        max_workers=max_workers,
        shards=shards,
        fastpath=fastpath,
        unsafe_inplace=unsafe_inplace,
        columnar=columnar,
        semantics=semantics,
    )


def lookup(
    graph: HierarchyLike, class_name: str, member: str
) -> LookupResult:
    """One-shot convenience wrapper: answer a single query through a
    generation-keyed LRU cache (:mod:`repro.core.cache`) in front of the
    memoising lazy engine (:mod:`repro.core.lazy`), computing only the
    entries the query actually demands and answering repeats in O(1).

    The cached engine is retained per graph in a weak-keyed registry, so
    repeated module-level calls against the same (possibly mutating)
    hierarchy hit the cache; invalidation is exact, keyed on the graph's
    generation counter.  For heavy query loads, build a
    :class:`MemberLookupTable` once or keep a
    :class:`~repro.core.cache.CachedMemberLookup` /
    :class:`~repro.core.lazy.LazyMemberLookup` around explicitly.
    """
    from repro.core.cache import shared_cached_lookup

    return shared_cached_lookup(graph).lookup(class_name, member)
