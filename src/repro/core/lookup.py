"""The member lookup algorithm — the paper's Figure 8.

This is the primary contribution of the paper: a propagation over the CHG
in topological order that tabulates ``lookup[C, m]`` for every class ``C``
and member name ``m``, manipulating *abstractions* of paths instead of the
(possibly exponentially many) paths themselves.

* A **red** table entry ``Red (L, V)`` means the lookup is unambiguous and
  resolved to a definition with ``ldc = L`` and ``leastVirtual = V``.
* A **blue** entry ``Blue S`` means the lookup is ambiguous; ``S`` is the
  set of ``leastVirtual`` abstractions of the definitions that must still
  be dominated by any would-be winner further down the hierarchy.

Blue definitions must be propagated even though they can never win
(Section 4 explains why: a blue definition can *disqualify* a red one —
see ``lookup(H, bar)`` in the paper's Figure 5/7).

Dominance between abstractions is Lemma 4's constant-time test::

    (L1, V1) dominates (L2, V2)  iff  V2 in virtual-bases[L1]
                                      or V1 == V2 != Ω

Complexity (Section 5): ``O(|M| * |N| * (|N| + |E|))`` to build the whole
table, dropping to ``O((|M| + |N|) * (|N| + |E|))`` when no entry is
ambiguous; a built table answers each query in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.core.paths import OMEGA, Abstraction, Path, extend_abstraction
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.topo import topological_order
from repro.hierarchy.virtual_bases import virtual_bases


@dataclass(frozen=True)
class RedEntry:
    """An unambiguous table entry: the abstraction ``(ldc, leastVirtual)``
    of the dominant definition, plus (optionally) a concrete witness path
    — the paper notes the witness can be carried for free since at most
    one red definition crosses any edge."""

    ldc: str
    least_virtual: Abstraction
    witness: Optional[Path] = None

    @property
    def pair(self) -> tuple[str, Abstraction]:
        return (self.ldc, self.least_virtual)

    def __str__(self) -> str:
        return f"Red ({self.ldc}, {self.least_virtual})"


@dataclass(frozen=True)
class BlueEntry:
    """An ambiguous table entry: the propagated blue abstraction set, plus
    the declaring classes of the conflicting definitions (carried only for
    diagnostics; the algorithm itself never reads ``candidate_ldcs``)."""

    abstractions: frozenset[Abstraction]
    candidate_ldcs: frozenset[str] = frozenset()

    def __str__(self) -> str:
        body = ", ".join(sorted(map(str, self.abstractions), key=str))
        return f"Blue {{{body}}}"


TableEntry = Union[RedEntry, BlueEntry]


@dataclass
class LookupStats:
    """Operation counters, used by the benchmarks to exhibit the paper's
    complexity claims independently of wall-clock noise."""

    classes_visited: int = 0
    entries_computed: int = 0
    red_propagations: int = 0
    blue_propagations: int = 0
    dominance_checks: int = 0

    def total_work(self) -> int:
        return (
            self.red_propagations
            + self.blue_propagations
            + self.dominance_checks
        )


class MemberLookupTable:
    """Eagerly tabulated member lookup over a class hierarchy graph.

    Building the table runs the Figure 8 algorithm once; afterwards
    :meth:`lookup` answers any query in constant time.
    """

    def __init__(
        self, graph: ClassHierarchyGraph, *, track_witnesses: bool = True
    ) -> None:
        graph.validate()
        self._graph = graph
        self._track_witnesses = track_witnesses
        self._virtual_bases = virtual_bases(graph)
        self._order = topological_order(graph)
        self._visible: dict[str, dict[str, None]] = {}
        self._table: dict[tuple[str, str], TableEntry] = {}
        self.stats = LookupStats()
        self._build()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def graph(self) -> ClassHierarchyGraph:
        return self._graph

    def lookup(self, class_name: str, member: str) -> LookupResult:
        """``lookup(C, m)`` per Definition 9, answered from the table."""
        self._graph.direct_bases(class_name)  # validate the class name
        entry = self._table.get((class_name, member))
        if entry is None:
            return not_found_result(class_name, member)
        if isinstance(entry, RedEntry):
            return unique_result(
                class_name,
                member,
                declaring_class=entry.ldc,
                least_virtual=entry.least_virtual,
                witness=entry.witness,
            )
        return ambiguous_result(
            class_name,
            member,
            blue_abstractions=entry.abstractions,
            candidates=tuple(sorted(entry.candidate_ldcs)),
        )

    def entry(self, class_name: str, member: str) -> Optional[TableEntry]:
        """The raw Red/Blue table entry (``None`` if ``m`` is not a member
        of any subobject of ``C``) — matches the paper's Figures 6-7."""
        return self._table.get((class_name, member))

    def visible_members(self, class_name: str) -> tuple[str, ...]:
        """``Members[C]``: names declared in ``C`` or inherited from any
        base, in the deterministic order the algorithm produced them."""
        return tuple(self._visible[class_name])

    def all_entries(self) -> Mapping[tuple[str, str], TableEntry]:
        return dict(self._table)

    def ambiguous_queries(self) -> tuple[tuple[str, str], ...]:
        """All ``(class, member)`` pairs whose lookup is ambiguous."""
        return tuple(
            key
            for key, entry in self._table.items()
            if isinstance(entry, BlueEntry)
        )

    # ------------------------------------------------------------------
    # The Figure 8 algorithm
    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph = self._graph
        for class_name in self._order:
            self.stats.classes_visited += 1
            # Lines [6]-[9]: Members[C] := M[C] ∪ ⋃ Members[X].
            visible: dict[str, None] = dict.fromkeys(
                graph.declared_members(class_name)
            )
            for edge in graph.direct_bases(class_name):
                visible.update(self._visible[edge.base])
            self._visible[class_name] = visible

            for member in visible:
                self.stats.entries_computed += 1
                self._table[(class_name, member)] = self._compute_entry(
                    class_name, member
                )

    def _compute_entry(self, class_name: str, member: str) -> TableEntry:
        graph = self._graph
        # Lines [11]-[12]: a generated definition C::m hides everything.
        if graph.declares(class_name, member):
            witness = (
                Path.trivial(class_name) if self._track_witnesses else None
            )
            return RedEntry(class_name, OMEGA, witness)

        # Lines [13]-[33]: fold the entries of the direct bases.
        to_be_dominated: set[Abstraction] = set()
        blue_ldcs: set[str] = set()
        candidate: Optional[RedEntry] = None

        for edge in graph.direct_bases(class_name):
            base = edge.base
            if member not in self._visible[base]:
                continue
            sub_entry = self._table[(base, member)]
            if isinstance(sub_entry, RedEntry):
                self.stats.red_propagations += 1
                incoming = RedEntry(
                    ldc=sub_entry.ldc,
                    least_virtual=extend_abstraction(
                        sub_entry.least_virtual, base, virtual=edge.virtual
                    ),
                    witness=(
                        sub_entry.witness.extend(
                            class_name, virtual=edge.virtual
                        )
                        if sub_entry.witness is not None
                        else None
                    ),
                )
                if candidate is None:
                    candidate = incoming
                elif self._dominates(incoming.pair, candidate.pair):
                    candidate = incoming
                elif not self._dominates(candidate.pair, incoming.pair):
                    # Neither dominates: both become blue for now.
                    to_be_dominated.add(candidate.least_virtual)
                    to_be_dominated.add(incoming.least_virtual)
                    blue_ldcs.add(candidate.ldc)
                    blue_ldcs.add(incoming.ldc)
                    candidate = None
            else:
                # Lines [29]-[31]: blue definitions propagate through ⋄.
                for abstraction in sub_entry.abstractions:
                    self.stats.blue_propagations += 1
                    to_be_dominated.add(
                        extend_abstraction(
                            abstraction, base, virtual=edge.virtual
                        )
                    )
                blue_ldcs |= sub_entry.candidate_ldcs

        # Lines [34]-[44]: resolve candidate against the blue set.
        if candidate is None:
            return BlueEntry(frozenset(to_be_dominated), frozenset(blue_ldcs))
        surviving = {
            abstraction
            for abstraction in to_be_dominated
            if not self._dominates(candidate.pair, (candidate.ldc, abstraction))
        }
        if not surviving:
            return candidate
        surviving.add(candidate.least_virtual)
        blue_ldcs.add(candidate.ldc)
        return BlueEntry(frozenset(surviving), frozenset(blue_ldcs))

    def _dominates(
        self, red: tuple[str, Abstraction], other: tuple[str, Abstraction]
    ) -> bool:
        """Lines [1]-[3]: Lemma 4's test using the precomputed
        virtual-base relation."""
        self.stats.dominance_checks += 1
        l1, v1 = red
        _, v2 = other
        if isinstance(v2, str) and v2 in self._virtual_bases[l1]:
            return True
        return v1 is not OMEGA and v1 == v2


def build_lookup_table(
    graph: ClassHierarchyGraph, *, track_witnesses: bool = True
) -> MemberLookupTable:
    """Run the paper's ``doLookup()`` and return the filled table."""
    return MemberLookupTable(graph, track_witnesses=track_witnesses)


def lookup(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> LookupResult:
    """One-shot convenience wrapper: build the table and answer a single
    query.  For repeated queries, build the table once or use the lazy
    engine (:mod:`repro.core.lazy`)."""
    return build_lookup_table(graph).lookup(class_name, member)
