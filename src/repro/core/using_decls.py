"""Using-declarations and lookup (a C++ feature the formalism absorbs).

``using Base::m;`` inside class ``X`` introduces the name ``m`` into
``X``'s scope: for member lookup it behaves *exactly like a declaration
in X* (it hides base-class ``m``'s and participates in dominance as
``X::m``), while denoting the entity declared in ``Base``.  The paper's
algorithm therefore needs no modification — the using-declaration is a
generated definition at ``X`` — and only the final answer must be
redirected to the underlying entity, which is what
:func:`lookup_through_using` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.results import LookupResult
from repro.errors import HierarchyError
from repro.hierarchy.graph import ClassHierarchyGraph


@dataclass(frozen=True)
class UnderlyingEntity:
    """Where a lookup answer ultimately lands after following
    using-declaration redirections."""

    declaring_class: str
    member: str
    via: tuple[str, ...]  # the chain of classes whose using-decls we crossed

    def qualified_name(self) -> str:
        return f"{self.declaring_class}::{self.member}"


def follow_using(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> UnderlyingEntity:
    """Resolve the chain ``X::m -> using A::m -> using B::m -> ...`` to
    the real declaration.  Cycles are impossible in a valid hierarchy
    (a using-declaration must name a *base* class's member), but the
    walk guards against malformed graphs anyway."""
    via: list[str] = []
    current = class_name
    seen = {current}
    while True:
        declared = graph.member(current, member)
        if declared.using_from is None:
            return UnderlyingEntity(
                declaring_class=current, member=member, via=tuple(via)
            )
        target = declared.using_from
        if target not in graph or target in seen:
            raise HierarchyError(
                f"using-declaration {current}::{member} names "
                f"{target!r}, which is invalid here"
            )
        via.append(current)
        seen.add(target)
        current = target


def lookup_through_using(
    graph: ClassHierarchyGraph, result: LookupResult
) -> Optional[UnderlyingEntity]:
    """The underlying entity of a UNIQUE lookup result, following any
    using-declaration redirections; ``None`` for non-unique results."""
    if not result.is_unique or result.declaring_class is None:
        return None
    return follow_using(graph, result.declaring_class, result.member)


def validate_using_declarations(graph: ClassHierarchyGraph) -> list[str]:
    """Check every using-declaration names a member actually inherited
    from a base class; returns human-readable problems (empty = valid)."""
    problems = []
    for class_name, member in graph.iter_class_members():
        if member.using_from is None:
            continue
        target = member.using_from
        if target not in graph:
            problems.append(
                f"{class_name}::{member.name}: unknown class {target!r}"
            )
            continue
        if not graph.is_base_of(target, class_name):
            problems.append(
                f"{class_name}::{member.name}: {target!r} is not a base "
                f"of {class_name!r}"
            )
            continue
        if not graph.declares(target, member.name):
            problems.append(
                f"{class_name}::{member.name}: {target!r} declares no "
                f"member {member.name!r}"
            )
    return problems
