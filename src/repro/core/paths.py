"""Paths in the class hierarchy graph (paper, Definitions 1-5, 13-15).

A path runs from its *least derived class* ``ldc`` (the most-base end) to
its *most derived class* ``mdc``; each step is an inheritance edge tagged
virtual or non-virtual.  The paper's key functions on paths:

* ``fixed(a)`` — the longest prefix of ``a`` containing no virtual edge
  (Definition 2).
* ``a . b``   — path concatenation (written ``concat`` here), defined when
  ``mdc(a) == ldc(b)``.
* ``hides``   — ``a`` hides ``b`` iff ``a`` is a suffix of ``b``
  (Definition 5).
* ``leastVirtual(a)`` — ``mdc(fixed(a))`` if ``a`` contains a virtual edge,
  else the special symbol Ω (Definitions 13-14).
* ``x ⋄ e``   — the abstraction of path extension (Definition 15), which
  satisfies ``leastVirtual(a . e) == leastVirtual(a) ⋄ e``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import InvalidPathError
from repro.hierarchy.graph import ClassHierarchyGraph


class _OmegaType:
    """The symbol Ω: 'this path contains no virtual edge'.

    A singleton distinct from every class name (Definition 13 requires a
    symbol not in ``N``).
    """

    _instance: "_OmegaType | None" = None

    def __new__(cls) -> "_OmegaType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Ω"

    def __reduce__(self):
        return (_OmegaType, ())


OMEGA = _OmegaType()

#: A path abstraction value: a class name or Ω.
Abstraction = Union[str, _OmegaType]


@dataclass(frozen=True)
class Path:
    """An immutable path in a CHG.

    ``nodes`` lists the classes from ``ldc`` to ``mdc``; ``virtuals[i]``
    tells whether the edge ``nodes[i] -> nodes[i+1]`` is virtual.  A
    trivial path (single node, no edges) is permitted and denotes the
    "whole object" subobject of that class.
    """

    nodes: tuple[str, ...]
    virtuals: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if not self.nodes:
            raise InvalidPathError("a path must contain at least one node")
        if len(self.virtuals) != len(self.nodes) - 1:
            raise InvalidPathError(
                f"path of {len(self.nodes)} nodes needs "
                f"{len(self.nodes) - 1} edge flags, got {len(self.virtuals)}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def trivial(node: str) -> "Path":
        """The empty-edge path consisting of a single class."""
        return Path(nodes=(node,))

    @staticmethod
    def edge(base: str, derived: str, *, virtual: bool = False) -> "Path":
        """A single-edge path ``base -> derived``."""
        return Path(nodes=(base, derived), virtuals=(virtual,))

    # ------------------------------------------------------------------
    # The paper's accessors
    # ------------------------------------------------------------------

    @property
    def ldc(self) -> str:
        """Least derived class: the source of the path (Definition 1)."""
        return self.nodes[0]

    @property
    def mdc(self) -> str:
        """Most derived class: the target of the path (Definition 1)."""
        return self.nodes[-1]

    @property
    def is_trivial(self) -> bool:
        return len(self.nodes) == 1

    def __len__(self) -> int:
        """Number of edges in the path."""
        return len(self.virtuals)

    def edges(self) -> Iterator[tuple[str, str, bool]]:
        """Yield ``(base, derived, virtual)`` triples along the path."""
        for i, virtual in enumerate(self.virtuals):
            yield self.nodes[i], self.nodes[i + 1], virtual

    # ------------------------------------------------------------------
    # Concatenation, prefixes and suffixes
    # ------------------------------------------------------------------

    def concat(self, other: "Path") -> "Path":
        """The paper's ``a . b``; requires ``mdc(a) == ldc(b)``."""
        if self.mdc != other.ldc:
            raise InvalidPathError(
                f"cannot concatenate: mdc({self}) = {self.mdc!r} but "
                f"ldc({other}) = {other.ldc!r}"
            )
        return Path(
            nodes=self.nodes + other.nodes[1:],
            virtuals=self.virtuals + other.virtuals,
        )

    def extend(self, derived: str, *, virtual: bool = False) -> "Path":
        """Append one edge ``mdc -> derived``."""
        return Path(
            nodes=self.nodes + (derived,), virtuals=self.virtuals + (virtual,)
        )

    def prefix(self, edge_count: int) -> "Path":
        """The prefix with the given number of edges."""
        if not 0 <= edge_count <= len(self):
            raise InvalidPathError(f"no prefix with {edge_count} edges in {self}")
        return Path(
            nodes=self.nodes[: edge_count + 1], virtuals=self.virtuals[:edge_count]
        )

    def suffix(self, edge_count: int) -> "Path":
        """The suffix with the given number of edges."""
        if not 0 <= edge_count <= len(self):
            raise InvalidPathError(f"no suffix with {edge_count} edges in {self}")
        if edge_count == 0:
            return Path.trivial(self.mdc)
        return Path(
            nodes=self.nodes[-(edge_count + 1):],
            virtuals=self.virtuals[-edge_count:],
        )

    def prefixes(self) -> Iterator["Path"]:
        """All prefixes, shortest first (a path is a prefix of itself)."""
        for k in range(len(self) + 1):
            yield self.prefix(k)

    def suffixes(self) -> Iterator["Path"]:
        """All suffixes, shortest first (a path is a suffix of itself)."""
        for k in range(len(self) + 1):
            yield self.suffix(k)

    def is_prefix_of(self, other: "Path") -> bool:
        k = len(self)
        return k <= len(other) and other.prefix(k) == self

    def is_suffix_of(self, other: "Path") -> bool:
        k = len(self)
        return k <= len(other) and other.suffix(k) == self

    # ------------------------------------------------------------------
    # fixed / virtual-path machinery (Definitions 2, 13, 14)
    # ------------------------------------------------------------------

    def fixed(self) -> "Path":
        """The longest prefix containing no virtual edge (Definition 2)."""
        k = 0
        while k < len(self.virtuals) and not self.virtuals[k]:
            k += 1
        return self.prefix(k)

    @property
    def is_virtual_path(self) -> bool:
        """Definition 13: a v-path contains at least one virtual edge."""
        return any(self.virtuals)

    def least_virtual(self) -> Abstraction:
        """Definition 14: ``mdc(fixed(p))`` for a v-path, else Ω."""
        if not self.is_virtual_path:
            return OMEGA
        return self.fixed().mdc

    # ------------------------------------------------------------------
    # Validation and display
    # ------------------------------------------------------------------

    def check_in(self, graph: ClassHierarchyGraph) -> "Path":
        """Verify every step of the path is an edge of ``graph`` with the
        claimed virtuality; return ``self`` for chaining."""
        if self.ldc not in graph:
            raise InvalidPathError(f"{self.ldc!r} is not a class of the graph")
        for base, derived, virtual in self.edges():
            if not graph.has_edge(base, derived):
                raise InvalidPathError(f"no edge {base!r} -> {derived!r} in graph")
            if graph.edge(base, derived).virtual != virtual:
                raise InvalidPathError(
                    f"edge {base!r} -> {derived!r} virtuality mismatch"
                )
        return self

    def __str__(self) -> str:
        if self.is_trivial:
            return self.nodes[0]
        parts = [self.nodes[0]]
        for i, virtual in enumerate(self.virtuals):
            parts.append("~" if virtual else "")
            parts.append(self.nodes[i + 1])
        return "".join(parts)


def path_in(graph: ClassHierarchyGraph, *nodes: str) -> Path:
    """Build a path through the listed classes, reading each edge's
    virtuality off the graph.

    >>> # path_in(g, "A", "B", "D") builds A -> B -> D
    """
    if not nodes:
        raise InvalidPathError("at least one class name is required")
    if nodes[0] not in graph:
        raise InvalidPathError(f"{nodes[0]!r} is not a class of the graph")
    virtuals = []
    for base, derived in zip(nodes, nodes[1:]):
        if not graph.has_edge(base, derived):
            raise InvalidPathError(f"no edge {base!r} -> {derived!r} in graph")
        virtuals.append(graph.edge(base, derived).virtual)
    return Path(nodes=tuple(nodes), virtuals=tuple(virtuals))


def extend_abstraction(
    value: Abstraction, base: str, *, virtual: bool
) -> Abstraction:
    """The ⋄ operator (Definition 15)::

        X ⋄ (B -> D) =  X  if X != Ω
                        B  if the edge B -> D is virtual
                        Ω  otherwise

    It abstracts path extension: for every path ``p`` ending at ``B``,
    ``leastVirtual(p . (B -> D)) == extend_abstraction(leastVirtual(p), B,
    virtual=is_virtual(B -> D))``.
    """
    if value is not OMEGA:
        return value
    return base if virtual else OMEGA
