"""Serialisation of computed lookup tables.

A compiler front end computes the lookup table once per hierarchy and
wants to reuse it across runs (the precompiled-header pattern).  This
module dumps a :class:`~repro.core.lookup.MemberLookupTable` to a
versioned JSON document and reloads it as a read-only
:class:`FrozenLookupTable` that answers queries without re-running the
algorithm — including the witness paths.

Format version 2 additionally persists the interned name tables, the
:class:`~repro.core.kernel.AmbiguityCertificate` (the persistent
demote-only mask of the serving overlay, not merely "which entries are
blue right now"), and enough to rebuild the flat overlay: on load,
certified-unambiguous columns are re-flattened into
:class:`~repro.core.fastpath.FlatColumn` arrays — including the witness
cons chains — so a deserialized table serves hot queries through
:class:`~repro.core.fastpath.FlatTable` exactly like the live table it
was dumped from.  Version-1 documents still load (entries only, no
flat overlay).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.fastpath import FlatColumn, FlatTable
from repro.core.kernel import NONE_ID, OMEGA_ID, AmbiguityCertificate
from repro.core.lookup import BlueEntry, MemberLookupTable, RedEntry, TableEntry
from repro.core.paths import OMEGA, Abstraction, Path
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.core.semantics import Semantics, get_semantics
from repro.errors import ReproError

TABLE_FORMAT_VERSION = 2

_OMEGA_TAG = "Ω!"  # distinct from any plausible class name


class TableSerializationError(ReproError):
    """The JSON document is not a valid lookup-table dump."""


def _encode_abstraction(value: Abstraction) -> str:
    return _OMEGA_TAG if value is OMEGA else value


def _decode_abstraction(value: str) -> Abstraction:
    return OMEGA if value == _OMEGA_TAG else value


def table_to_dict(table: MemberLookupTable) -> dict[str, Any]:
    entries = []
    for (class_name, member), entry in table.all_entries().items():
        record: dict[str, Any] = {"class": class_name, "member": member}
        if isinstance(entry, RedEntry):
            record["red"] = {
                "ldc": entry.ldc,
                "lv": _encode_abstraction(entry.least_virtual),
            }
            if entry.witness is not None:
                record["red"]["witness"] = {
                    "nodes": list(entry.witness.nodes),
                    "virtuals": list(entry.witness.virtuals),
                }
        else:
            record["blue"] = {
                "abstractions": sorted(
                    _encode_abstraction(a) for a in entry.abstractions
                ),
                "candidates": sorted(entry.candidate_ldcs),
            }
        entries.append(record)
    ch = table.compiled
    certificate = _table_certificate(table, ch)
    return {
        "format": "repro-lookup-table",
        "version": TABLE_FORMAT_VERSION,
        "classes": list(ch.class_names),
        "members": list(ch.member_names),
        "ambiguous_members": sorted(
            ch.member_names[mid]
            for mid in range(ch.n_members)
            if (certificate.ambiguous_columns >> mid) & 1
        ),
        "blue_cells": certificate.blue_cells,
        "semantics": table.semantics.name,
        "entries": entries,
    }


def _table_certificate(
    table: MemberLookupTable, ch
) -> AmbiguityCertificate:
    """The table's serving certificate: the persistent demote-only mask
    when a flat overlay exists (a demoted column stays demoted even if
    no blue entry survives today), else derived from the entries."""
    flat = table.flat_table
    blue_cells = sum(
        1
        for entry in table.all_entries().values()
        if not isinstance(entry, RedEntry)
    )
    if flat is not None:
        return AmbiguityCertificate(
            ambiguous_columns=flat.ambiguous_columns, blue_cells=blue_cells
        )
    member_ids = {name: mid for mid, name in enumerate(ch.member_names)}
    mask = 0
    for (class_name, member), entry in table.all_entries().items():
        if not isinstance(entry, RedEntry):
            mask |= 1 << member_ids[member]
    return AmbiguityCertificate(ambiguous_columns=mask, blue_cells=blue_cells)


@dataclass(frozen=True)
class _FrozenInterner:
    """The duck-typed sliver of :class:`~repro.hierarchy.compiled
    .CompiledHierarchy` that flat serving actually reads: the dense
    class-name table (for declaring-class / leastVirtual / witness
    materialisation)."""

    class_names: tuple[str, ...]


def _rebuild_flat(
    class_names: list,
    member_names: list,
    ambiguous_members: list,
    entries: Mapping[tuple[str, str], TableEntry],
) -> tuple[FlatTable, _FrozenInterner, dict, dict]:
    """Re-flatten every certified-unambiguous column from the persisted
    entries, re-interning names to dense ids and witness paths back to
    cons chains, so the frozen table serves through the same
    :class:`~repro.core.fastpath.FlatColumn` arrays as the live one."""
    class_ids = {name: cid for cid, name in enumerate(class_names)}
    member_ids = {name: mid for mid, name in enumerate(member_names)}
    mask = 0
    for name in ambiguous_members:
        mask |= 1 << member_ids[name]
    flat = FlatTable(ambiguous_columns=mask)
    columns: dict[int, FlatColumn] = {}
    n_classes = len(class_names)
    for (class_name, member), entry in entries.items():
        if not isinstance(entry, RedEntry):
            continue
        mid = member_ids[member]
        if (mask >> mid) & 1:
            continue
        column = columns.get(mid)
        if column is None:
            column = columns[mid] = FlatColumn(mid, n_classes)
        cell = None
        if entry.witness is not None:
            nodes, virtuals = entry.witness.nodes, entry.witness.virtuals
            cell = (class_ids[nodes[0]], False, None)
            for node, virtual in zip(nodes[1:], virtuals):
                cell = (class_ids[node], virtual, cell)
        lv = entry.least_virtual
        if lv is OMEGA:
            lv_id = OMEGA_ID
        elif lv is None:  # rules without a leastVirtual notion (e.g. C3)
            lv_id = NONE_ID
        else:
            lv_id = class_ids[lv]
        column.set_cell(
            class_ids[class_name], (class_ids[entry.ldc], lv_id, cell)
        )
    flat.columns = columns
    return flat, _FrozenInterner(tuple(class_names)), class_ids, member_ids


def table_from_dict(data: Mapping[str, Any]) -> "FrozenLookupTable":
    if (
        not isinstance(data, Mapping)
        or data.get("format") != "repro-lookup-table"
    ):
        raise TableSerializationError("not a repro-lookup-table document")
    version = data.get("version")
    if version not in (1, TABLE_FORMAT_VERSION):
        raise TableSerializationError(f"unsupported version {version!r}")
    # Documents written before the rule was persisted (and all v1
    # documents) are C++-dominance tables by construction; anything
    # explicitly recorded must name a registered rule.
    semantics_name = data.get("semantics")
    try:
        semantics = get_semantics(semantics_name)
    except ValueError as exc:
        raise TableSerializationError(
            f"table document built under unknown semantics rule "
            f"{semantics_name!r}"
        ) from exc
    entries: dict[tuple[str, str], TableEntry] = {}
    try:
        for record in data["entries"]:
            key = (record["class"], record["member"])
            if "red" in record:
                red = record["red"]
                witness = None
                if "witness" in red:
                    witness = Path(
                        nodes=tuple(red["witness"]["nodes"]),
                        virtuals=tuple(
                            bool(v) for v in red["witness"]["virtuals"]
                        ),
                    )
                entries[key] = RedEntry(
                    ldc=red["ldc"],
                    least_virtual=_decode_abstraction(red["lv"]),
                    witness=witness,
                )
            else:
                blue = record["blue"]
                entries[key] = BlueEntry(
                    abstractions=frozenset(
                        _decode_abstraction(a) for a in blue["abstractions"]
                    ),
                    candidate_ldcs=frozenset(blue["candidates"]),
                )
        if version == 1:
            return FrozenLookupTable(entries, semantics=semantics)
        flat, interner, class_ids, member_ids = _rebuild_flat(
            data["classes"],
            data["members"],
            data["ambiguous_members"],
            entries,
        )
        certificate = AmbiguityCertificate(
            ambiguous_columns=flat.ambiguous_columns,
            blue_cells=int(data.get("blue_cells", 0)),
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise TableSerializationError(f"malformed table document: {exc}") from exc
    return FrozenLookupTable(
        entries,
        flat=flat,
        certificate=certificate,
        interner=interner,
        class_ids=class_ids,
        member_ids=member_ids,
        semantics=semantics,
    )


def dumps(table: MemberLookupTable, *, indent: Optional[int] = None) -> str:
    return json.dumps(table_to_dict(table), indent=indent)


def loads(text: str) -> "FrozenLookupTable":
    try:
        return table_from_dict(json.loads(text))
    except json.JSONDecodeError as exc:
        raise TableSerializationError(f"invalid JSON: {exc}") from exc


@dataclass(frozen=True, eq=False)
class FrozenLookupTable:
    """A reloaded table: answers queries from the stored entries.

    Version-2 documents additionally carry the rebuilt flat overlay
    (``flat``) and its :class:`~repro.core.kernel.AmbiguityCertificate`:
    queries on certified-unambiguous columns are served through
    :meth:`FlatTable.serve` (array probe + memoised result), exactly
    like the live table the dump came from, and fall back to the entry
    mapping for ambiguous columns and unknown names."""

    entries: Mapping[tuple[str, str], TableEntry]
    flat: Optional[FlatTable] = None
    certificate: Optional[AmbiguityCertificate] = None
    interner: Optional[_FrozenInterner] = None
    class_ids: Optional[Mapping[str, int]] = field(default=None, repr=False)
    member_ids: Optional[Mapping[str, int]] = field(default=None, repr=False)
    semantics: Optional[Semantics] = None

    def lookup(self, class_name: str, member: str) -> LookupResult:
        if self.flat is not None:
            cid = self.class_ids.get(class_name)
            mid = self.member_ids.get(member)
            if cid is not None and mid is not None:
                result = self.flat.serve(
                    self.interner, cid, mid, class_name, member
                )
                if result is not None:
                    return result
        entry = self.entries.get((class_name, member))
        if entry is None:
            return not_found_result(class_name, member)
        if isinstance(entry, RedEntry):
            return unique_result(
                class_name,
                member,
                declaring_class=entry.ldc,
                least_virtual=entry.least_virtual,
                witness=entry.witness,
            )
        return ambiguous_result(
            class_name,
            member,
            blue_abstractions=entry.abstractions,
            candidates=tuple(sorted(entry.candidate_ldcs)),
        )

    def lookup_many(self, queries) -> list[LookupResult]:
        """Answer a batch — parity with every other serving surface.

        Each query routes through :meth:`lookup` and therefore through
        the rebuilt flat overlay where the column is certified; the
        result list is positionally aligned with ``queries``."""
        lookup = self.lookup
        return [lookup(class_name, member) for class_name, member in queries]

    def entry(self, class_name: str, member: str) -> Optional[TableEntry]:
        return self.entries.get((class_name, member))

    def __len__(self) -> int:
        return len(self.entries)
