"""Serialisation of computed lookup tables.

A compiler front end computes the lookup table once per hierarchy and
wants to reuse it across runs (the precompiled-header pattern).  This
module dumps a :class:`~repro.core.lookup.MemberLookupTable` to a
versioned JSON document and reloads it as a read-only
:class:`FrozenLookupTable` that answers queries without re-running the
algorithm — including the witness paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.core.lookup import BlueEntry, MemberLookupTable, RedEntry, TableEntry
from repro.core.paths import OMEGA, Abstraction, Path
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.errors import ReproError

TABLE_FORMAT_VERSION = 1

_OMEGA_TAG = "Ω!"  # distinct from any plausible class name


class TableSerializationError(ReproError):
    """The JSON document is not a valid lookup-table dump."""


def _encode_abstraction(value: Abstraction) -> str:
    return _OMEGA_TAG if value is OMEGA else value


def _decode_abstraction(value: str) -> Abstraction:
    return OMEGA if value == _OMEGA_TAG else value


def table_to_dict(table: MemberLookupTable) -> dict[str, Any]:
    entries = []
    for (class_name, member), entry in table.all_entries().items():
        record: dict[str, Any] = {"class": class_name, "member": member}
        if isinstance(entry, RedEntry):
            record["red"] = {
                "ldc": entry.ldc,
                "lv": _encode_abstraction(entry.least_virtual),
            }
            if entry.witness is not None:
                record["red"]["witness"] = {
                    "nodes": list(entry.witness.nodes),
                    "virtuals": list(entry.witness.virtuals),
                }
        else:
            record["blue"] = {
                "abstractions": sorted(
                    _encode_abstraction(a) for a in entry.abstractions
                ),
                "candidates": sorted(entry.candidate_ldcs),
            }
        entries.append(record)
    return {
        "format": "repro-lookup-table",
        "version": TABLE_FORMAT_VERSION,
        "entries": entries,
    }


def table_from_dict(data: Mapping[str, Any]) -> "FrozenLookupTable":
    if (
        not isinstance(data, Mapping)
        or data.get("format") != "repro-lookup-table"
    ):
        raise TableSerializationError("not a repro-lookup-table document")
    if data.get("version") != TABLE_FORMAT_VERSION:
        raise TableSerializationError(
            f"unsupported version {data.get('version')!r}"
        )
    entries: dict[tuple[str, str], TableEntry] = {}
    try:
        for record in data["entries"]:
            key = (record["class"], record["member"])
            if "red" in record:
                red = record["red"]
                witness = None
                if "witness" in red:
                    witness = Path(
                        nodes=tuple(red["witness"]["nodes"]),
                        virtuals=tuple(
                            bool(v) for v in red["witness"]["virtuals"]
                        ),
                    )
                entries[key] = RedEntry(
                    ldc=red["ldc"],
                    least_virtual=_decode_abstraction(red["lv"]),
                    witness=witness,
                )
            else:
                blue = record["blue"]
                entries[key] = BlueEntry(
                    abstractions=frozenset(
                        _decode_abstraction(a) for a in blue["abstractions"]
                    ),
                    candidate_ldcs=frozenset(blue["candidates"]),
                )
    except (KeyError, TypeError) as exc:
        raise TableSerializationError(f"malformed table document: {exc}") from exc
    return FrozenLookupTable(entries)


def dumps(table: MemberLookupTable, *, indent: Optional[int] = None) -> str:
    return json.dumps(table_to_dict(table), indent=indent)


def loads(text: str) -> "FrozenLookupTable":
    try:
        return table_from_dict(json.loads(text))
    except json.JSONDecodeError as exc:
        raise TableSerializationError(f"invalid JSON: {exc}") from exc


@dataclass(frozen=True)
class FrozenLookupTable:
    """A reloaded table: answers queries from stored entries only."""

    entries: Mapping[tuple[str, str], TableEntry]

    def lookup(self, class_name: str, member: str) -> LookupResult:
        entry = self.entries.get((class_name, member))
        if entry is None:
            return not_found_result(class_name, member)
        if isinstance(entry, RedEntry):
            return unique_result(
                class_name,
                member,
                declaring_class=entry.ldc,
                least_virtual=entry.least_virtual,
                witness=entry.witness,
            )
        return ambiguous_result(
            class_name,
            member,
            blue_abstractions=entry.abstractions,
            candidates=tuple(sorted(entry.candidate_ldcs)),
        )

    def entry(self, class_name: str, member: str) -> Optional[TableEntry]:
        return self.entries.get((class_name, member))

    def __len__(self) -> int:
        return len(self.entries)
