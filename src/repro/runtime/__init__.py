"""An executable object model built on lookup, layout and dyn/stat."""

from repro.runtime.objects import (
    AmbiguousAccessError,
    MissingMethodError,
    ObjectInstance,
    Pointer,
    Runtime,
    UpcastError,
)

__all__ = [
    "AmbiguousAccessError",
    "MissingMethodError",
    "ObjectInstance",
    "Pointer",
    "Runtime",
    "UpcastError",
]
