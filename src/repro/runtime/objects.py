"""A tiny executable object model on top of the lookup machinery.

This is the "does it all hang together" substrate: objects are
constructed with the layout engine, pointers are subobject references,
upcasts follow the C++ rule (unambiguous base subobject or error),
field reads/writes resolve with member lookup *at the pointer's static
type* and then re-embed into the complete object (the Rossie-Friedman
``stat`` staging), and virtual calls dispatch on the complete type
(``dyn``, the final overrider).

It makes the paper's semantics *observable*: in Figure 1's program the
two ``A`` subobjects of an ``E`` hold independent fields, while in
Figure 2 the virtual diamond shares one — and reading ``e.m`` is a
runtime :class:`AmbiguousAccessError` exactly when the paper says the
lookup is ⊥.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.lookup import MemberLookupTable
from repro.core.equivalence import SubobjectKey, subobject_key
from repro.core.static_lookup import StaticAwareLookupTable
from repro.errors import ReproError
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.layout.object_layout import ObjectLayout, compute_layout
from repro.subobjects.graph import SubobjectGraph
from repro.subobjects.poset import SubobjectPoset


class AmbiguousAccessError(ReproError):
    """A member access whose lookup is ⊥ — a compile error in C++,
    surfaced at access time here."""


class UpcastError(ReproError):
    """An invalid or ambiguous pointer conversion."""


class MissingMethodError(ReproError):
    """A call dispatched to a declaration with no registered body."""


@dataclass
class ObjectInstance:
    """A complete object: its type, layout, and one storage cell per
    allocated field slot."""

    complete_type: str
    layout: ObjectLayout
    storage: list[Any]

    def __repr__(self) -> str:
        return f"<{self.complete_type} object, {len(self.storage)} slots>"


@dataclass(frozen=True)
class Pointer:
    """A typed pointer: an object plus the subobject it addresses.  The
    pointer's *static type* is the subobject's class."""

    instance: ObjectInstance
    key: SubobjectKey

    @property
    def static_type(self) -> str:
        return self.key.ldc

    def __str__(self) -> str:
        return f"({self.static_type}*) -> {self.key} of {self.instance.complete_type}"


@dataclass
class Runtime:
    """Executes member accesses and virtual calls over a hierarchy."""

    graph: ClassHierarchyGraph
    _table: StaticAwareLookupTable = field(init=False)
    _dispatch: MemberLookupTable = field(init=False)
    _layouts: dict[str, ObjectLayout] = field(default_factory=dict, init=False)
    _subobjects: dict[str, SubobjectGraph] = field(
        default_factory=dict, init=False
    )
    _posets: dict[str, SubobjectPoset] = field(default_factory=dict, init=False)
    _methods: dict[tuple[str, str], Callable] = field(
        default_factory=dict, init=False
    )

    def __post_init__(self) -> None:
        self.graph.validate()
        self._table = StaticAwareLookupTable(self.graph)
        self._dispatch = MemberLookupTable(self.graph)

    # ------------------------------------------------------------------
    # Construction and pointers
    # ------------------------------------------------------------------

    def construct(self, complete_type: str, **fields: Any) -> ObjectInstance:
        """Create an object with zero-initialised slots; ``fields`` are
        written through the complete type (e.g. ``construct("E", m=1)``)."""
        layout = self._layout(complete_type)
        instance = ObjectInstance(
            complete_type=complete_type,
            layout=layout,
            storage=[0] * layout.size,
        )
        for name, value in fields.items():
            self.write(self.pointer(instance), name, value)
        return instance

    def pointer(self, instance: ObjectInstance) -> Pointer:
        """A pointer to the complete object."""
        return Pointer(
            instance=instance,
            key=SubobjectKey(
                (instance.complete_type,), instance.complete_type
            ),
        )

    def upcast(self, pointer: Pointer, base_class: str) -> Pointer:
        """Convert to a base-class pointer: the addressed class must have
        exactly one ``base_class`` subobject within the pointed-to
        subobject (C++'s unambiguous-base rule)."""
        if base_class == pointer.static_type:
            return pointer
        poset = self._poset(pointer.instance.complete_type)
        candidates = [
            key
            for key in poset.dominated_by(pointer.key)
            if key.ldc == base_class
        ]
        if not candidates:
            raise UpcastError(
                f"{base_class!r} is not a base of {pointer.static_type!r}"
            )
        if len(candidates) > 1:
            raise UpcastError(
                f"ambiguous conversion to {base_class!r}: "
                f"{sorted(map(str, candidates))}"
            )
        return Pointer(instance=pointer.instance, key=candidates[0])

    # ------------------------------------------------------------------
    # Field access (the `stat` staging)
    # ------------------------------------------------------------------

    def read(self, pointer: Pointer, member: str) -> Any:
        slot = self._locate_field(pointer, member)
        return pointer.instance.storage[slot]

    def write(self, pointer: Pointer, member: str, value: Any) -> None:
        slot = self._locate_field(pointer, member)
        pointer.instance.storage[slot] = value

    def _locate_field(self, pointer: Pointer, member: str) -> int:
        """Resolve in the pointer's static type, then re-embed the
        witness into the complete object to find the storage slot."""
        result = self._table.lookup(pointer.static_type, member)
        if result.is_ambiguous:
            raise AmbiguousAccessError(str(result))
        if result.is_not_found:
            raise KeyError(
                f"{pointer.static_type!r} has no member {member!r}"
            )
        declared = self.graph.member(result.declaring_class, member)
        if declared.behaves_as_static:
            raise KeyError(
                f"{result.qualified_name()} is a static member; it has no "
                "per-object storage in this model"
            )
        graph = self._subobject_graph(pointer.instance.complete_type)
        representative = graph.get(pointer.key).representative
        composed = result.witness.concat(representative)
        target_key = subobject_key(composed)
        layout = pointer.instance.layout
        return layout.slot_for(target_key, member).offset

    # ------------------------------------------------------------------
    # Virtual calls (the `dyn` staging)
    # ------------------------------------------------------------------

    def define(
        self, class_name: str, member: str, body: Callable[..., Any]
    ) -> None:
        """Register the body of ``class_name::member``; it is invoked as
        ``body(runtime, this_pointer)``."""
        self.graph.member(class_name, member)  # must exist
        self._methods[(class_name, member)] = body

    def call(self, pointer: Pointer, member: str) -> Any:
        """Virtual dispatch: resolve the final overrider in the
        *complete* type, adjust ``this``, and invoke the body."""
        visible = self._table.lookup(pointer.static_type, member)
        if visible.is_not_found:
            raise KeyError(
                f"{pointer.static_type!r} has no member {member!r}"
            )
        final = self._dispatch.lookup(pointer.instance.complete_type, member)
        if final.is_ambiguous:
            raise AmbiguousAccessError(str(final))
        assert final.is_unique
        this = Pointer(instance=pointer.instance, key=final.subobject)
        body = self._methods.get((final.declaring_class, member))
        if body is None:
            raise MissingMethodError(
                f"{final.declaring_class}::{member} has no body"
            )
        return body(self, this)

    def call_qualified(
        self, pointer: Pointer, qualifier: str, member: str
    ) -> Any:
        """A qualified call ``p->Base::m()``: no virtual dispatch; the
        body of the declaration found in ``qualifier``'s scope runs."""
        base_pointer = self.upcast(pointer, qualifier)
        result = self._table.lookup(qualifier, member)
        if result.is_ambiguous:
            raise AmbiguousAccessError(str(result))
        if result.is_not_found:
            raise KeyError(f"{qualifier!r} has no member {member!r}")
        body = self._methods.get((result.declaring_class, member))
        if body is None:
            raise MissingMethodError(
                f"{result.declaring_class}::{member} has no body"
            )
        return body(self, base_pointer)

    # ------------------------------------------------------------------

    def _layout(self, complete_type: str) -> ObjectLayout:
        if complete_type not in self._layouts:
            self._layouts[complete_type] = compute_layout(
                self.graph, complete_type
            )
        return self._layouts[complete_type]

    def _subobject_graph(self, complete_type: str) -> SubobjectGraph:
        if complete_type not in self._subobjects:
            self._subobjects[complete_type] = SubobjectGraph(
                self.graph, complete_type
            )
        return self._subobjects[complete_type]

    def _poset(self, complete_type: str) -> SubobjectPoset:
        if complete_type not in self._posets:
            self._posets[complete_type] = SubobjectPoset(
                self._subobject_graph(complete_type)
            )
        return self._posets[complete_type]
