"""Overload resolution staged after name lookup."""

from repro.overloads.resolution import (
    AmbiguousOverload,
    NoViableOverload,
    OverloadedHierarchy,
    OverloadError,
    ResolvedOverload,
    Signature,
)

__all__ = [
    "AmbiguousOverload",
    "NoViableOverload",
    "OverloadError",
    "OverloadedHierarchy",
    "ResolvedOverload",
    "Signature",
]
