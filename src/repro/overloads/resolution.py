"""Overload resolution on top of member lookup.

The paper deliberately defines lookup on member *names* ("overload sets
collapse to a single name"), because C++ really does work in two stages:
**name lookup first** — the paper's algorithm, which finds the single
class whose overload set is visible and hides all base-class sets with
the same name — **then overload resolution** within that one set.  This
module implements the second stage, exhibiting the two classic
consequences of the staging:

* a derived-class declaration hides *all* base overloads of the name,
  even those with different signatures (the classic C++ gotcha); and
* ``using Base::f;`` merges the base set back into the derived set.

Viability uses the hierarchy itself: an argument of class type ``D``
converts to a parameter of class type ``B`` exactly when ``B`` is an
*unambiguous* base subobject of ``D`` — the same subobject machinery as
everywhere else.  Exact matches beat conversions; ties are ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.static_lookup import StaticAwareLookupTable
from repro.core.using_decls import follow_using
from repro.errors import ReproError
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.graph import SubobjectGraph


class OverloadError(ReproError):
    """Base for overload-resolution failures."""


class NoViableOverload(OverloadError):
    """No candidate signature accepts the argument list."""


class AmbiguousOverload(OverloadError):
    """Several equally good candidates (or ambiguous name lookup)."""


@dataclass(frozen=True)
class Signature:
    """A function signature: an ordered tuple of parameter type names.

    Built-in type names ("int", "double", ...) are opaque strings;
    class-type parameters take part in derived-to-base conversions.
    """

    params: tuple[str, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(self.params) + ")"


@dataclass(frozen=True)
class ResolvedOverload:
    declaring_class: str
    member: str
    signature: Signature
    conversions: int  # number of derived-to-base argument conversions

    def __str__(self) -> str:
        return f"{self.declaring_class}::{self.member}{self.signature}"


@dataclass
class OverloadedHierarchy:
    """A hierarchy plus per-declaration overload sets.

    The CHG carries each function *name* once per class (as the paper's
    model requires); the signatures of the overloads declared under that
    name live here.
    """

    graph: ClassHierarchyGraph
    _signatures: dict[tuple[str, str], list[Signature]] = field(
        default_factory=dict, init=False
    )
    _table: Optional[StaticAwareLookupTable] = field(default=None, init=False)

    def declare(
        self, class_name: str, member: str, *param_lists: Sequence[str]
    ) -> None:
        """Attach overload signatures to an existing declaration."""
        self.graph.member(class_name, member)  # must exist
        bucket = self._signatures.setdefault((class_name, member), [])
        for params in param_lists:
            signature = Signature(tuple(params))
            if signature in bucket:
                raise OverloadError(
                    f"{class_name}::{member}{signature} declared twice"
                )
            bucket.append(signature)

    def overload_set(self, class_name: str, member: str) -> tuple[Signature, ...]:
        """The candidate set of ``class_name::member``: its own
        signatures, plus — when the declaration is a using-declaration —
        the signatures of the chain it re-exports."""
        own = tuple(self._signatures.get((class_name, member), ()))
        declared = self.graph.member(class_name, member)
        if declared.using_from is None:
            return own
        underlying = follow_using(self.graph, class_name, member)
        inherited = tuple(
            self._signatures.get(
                (underlying.declaring_class, member), ()
            )
        )
        merged = list(own)
        for signature in inherited:
            if signature not in merged:
                merged.append(signature)
        return tuple(merged)

    # ------------------------------------------------------------------

    def resolve_call(
        self, class_name: str, member: str, arg_types: Sequence[str]
    ) -> ResolvedOverload:
        """Two-stage resolution of ``obj.member(args)`` with ``obj`` of
        static type ``class_name``."""
        table = self._lookup_table()
        found = table.lookup(class_name, member)
        if found.is_not_found:
            raise NoViableOverload(
                f"{class_name!r} has no member {member!r}"
            )
        if found.is_ambiguous:
            raise AmbiguousOverload(
                f"name lookup for {member!r} in {class_name!r} is already "
                "ambiguous (the paper's ⊥) before overloads are considered"
            )
        declaring = found.declaring_class
        candidates = self.overload_set(declaring, member)
        if not candidates:
            raise NoViableOverload(
                f"{declaring}::{member} has no recorded signatures"
            )

        viable: list[tuple[int, Signature]] = []
        for signature in candidates:
            cost = self._viability_cost(signature, tuple(arg_types))
            if cost is not None:
                viable.append((cost, signature))
        if not viable:
            raise NoViableOverload(
                f"no viable overload of {declaring}::{member} for "
                f"({', '.join(arg_types)}); candidates: "
                + ", ".join(str(s) for s in candidates)
            )
        viable.sort(key=lambda pair: pair[0])
        best_cost = viable[0][0]
        best = [signature for cost, signature in viable if cost == best_cost]
        if len(best) > 1:
            raise AmbiguousOverload(
                f"call to {declaring}::{member} is ambiguous between "
                + " and ".join(str(s) for s in best)
            )
        return ResolvedOverload(
            declaring_class=declaring,
            member=member,
            signature=best[0],
            conversions=best_cost,
        )

    # ------------------------------------------------------------------

    def _viability_cost(
        self, signature: Signature, arg_types: tuple[str, ...]
    ) -> Optional[int]:
        """None if not viable; otherwise the number of derived-to-base
        conversions needed."""
        if len(signature.params) != len(arg_types):
            return None
        conversions = 0
        for param, arg in zip(signature.params, arg_types):
            if param == arg:
                continue
            if self._converts_to_base(arg, param):
                conversions += 1
                continue
            return None
        return conversions

    def _converts_to_base(self, arg: str, param: str) -> bool:
        """Derived-to-base conversion: viable iff ``param`` is an
        unambiguous base subobject of ``arg``."""
        if arg not in self.graph or param not in self.graph:
            return False
        if not self.graph.is_base_of(param, arg):
            return False
        copies = SubobjectGraph(self.graph, arg).of_class(param)
        return len(copies) == 1

    def _lookup_table(self) -> StaticAwareLookupTable:
        if self._table is None:
            self._table = StaticAwareLookupTable(self.graph)
        return self._table
