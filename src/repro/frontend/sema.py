"""Semantic analysis: lower a parsed translation unit to a class
hierarchy graph and resolve the member accesses of the program.

This stage enforces the C++ discipline the CHG construction relies on
(bases must be previously *defined* classes, no duplicate direct bases,
one declaration per member name) and then answers every ``x.m`` /
``p->m`` / ``T::m`` in the program with the paper's lookup algorithm —
using the static-member-aware variant, as a real compiler must.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.results import LookupResult
from repro.core.static_lookup import StaticAwareLookupTable
from repro.errors import HierarchyError
from repro.frontend.cpp_ast import (
    AccessOp,
    ClassDecl,
    MemberAccess,
    TranslationUnit,
    VarDecl,
)
from repro.frontend.errors import DiagnosticBag, SemanticError
from repro.frontend.parser import parse
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Member


@dataclass(frozen=True)
class ResolvedAccess:
    """One member access of the program together with its resolution."""

    access: MemberAccess
    class_name: Optional[str]
    result: Optional[LookupResult]

    @property
    def ok(self) -> bool:
        return self.result is not None and self.result.is_unique


@dataclass
class Program:
    """The analysed program: hierarchy, lookup table and resolutions."""

    source: str
    hierarchy: ClassHierarchyGraph
    diagnostics: DiagnosticBag
    variables: dict[str, VarDecl] = field(default_factory=dict)
    resolutions: list[ResolvedAccess] = field(default_factory=list)
    _table: Optional[StaticAwareLookupTable] = None

    @property
    def lookup_table(self) -> StaticAwareLookupTable:
        if self._table is None:
            self._table = StaticAwareLookupTable(self.hierarchy)
        return self._table

    def resolve(self, class_name: str, member: str) -> LookupResult:
        """Answer ``lookup(class, member)`` over the program's hierarchy."""
        return self.lookup_table.lookup(class_name, member)

    def errors(self) -> list:
        return self.diagnostics.errors


def analyze(source: str) -> Program:
    """Parse and analyse a program; diagnostics are collected, not raised
    (syntax errors do still raise :class:`ParseError`)."""
    unit = parse(source)
    return analyze_unit(unit, source)


def analyze_or_raise(source: str) -> Program:
    """Like :func:`analyze` but raises :class:`SemanticError` if any
    semantic error was diagnosed."""
    program = analyze(source)
    if program.diagnostics.has_errors():
        raise SemanticError(program.diagnostics.errors)
    return program


def analyze_unit(unit: TranslationUnit, source: str = "") -> Program:
    bag = DiagnosticBag()
    graph = ClassHierarchyGraph()
    program = Program(source=source, hierarchy=graph, diagnostics=bag)

    for decl in unit.classes():
        _declare_class(graph, decl, bag)

    for var in unit.file_scope_variables():
        _declare_variable(program, var, bag)

    for function in unit.functions():
        for var in function.variables:
            _declare_variable(program, var, bag)
        for access in function.accesses:
            program.resolutions.append(_resolve_access(program, access, bag))

    return program


class IncrementalSema:
    """Streaming semantic analysis: lower :class:`ClassDecl`\\ s one at
    a time into a *live* :class:`ClassHierarchyGraph`.

    This is the batch-oriented face of :func:`analyze_unit` for the
    ingestion pipeline — the same declaration discipline (bases must be
    previously defined, no duplicate members, using-declarations
    validated against the base), but the graph persists across calls,
    across files, and across the ``apply_delta`` batches that bring a
    served table current while parsing continues.
    """

    def __init__(
        self,
        graph: Optional[ClassHierarchyGraph] = None,
        diagnostics: Optional[DiagnosticBag] = None,
    ) -> None:
        self.graph = graph if graph is not None else ClassHierarchyGraph()
        self.diagnostics = (
            diagnostics if diagnostics is not None else DiagnosticBag()
        )
        self.classes_declared = 0

    def declare(self, decl: ClassDecl) -> None:
        """Lower one completed class declaration (and its nested
        classes) into the live graph.  Errors are collected on
        :attr:`diagnostics`, never raised — one bad class must not
        stall the stream."""
        before = len(self.graph)
        _declare_class(self.graph, decl, self.diagnostics)
        self.classes_declared += len(self.graph) - before


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


def _declare_class(
    graph: ClassHierarchyGraph,
    decl: ClassDecl,
    bag: DiagnosticBag,
    scope_prefix: str = "",
) -> None:
    name = scope_prefix + decl.name
    if name in graph:
        bag.error(f"redefinition of {name!r}", decl.location)
        return
    graph.add_class(name, is_struct=decl.is_struct)

    for base in decl.bases:
        if base.name not in graph:
            bag.error(
                f"base class {base.name!r} of {name!r} is not a previously "
                "defined class (C++ requires complete base classes)",
                base.location,
            )
            continue
        try:
            graph.add_edge(
                base.name, name, virtual=base.virtual, access=base.access
            )
        except HierarchyError as exc:
            bag.error(str(exc), base.location)

    for member in decl.members:
        if graph.declares(name, member.name):
            bag.error(
                f"class {name!r} already declares a member named "
                f"{member.name!r} (lookup is defined on member names)",
                member.location,
            )
            continue
        kind = member.kind
        is_static = member.is_static
        if member.using_from is not None:
            underlying = _check_using(graph, name, member, bag)
            if underlying is None:
                continue
            kind = underlying.kind
            is_static = underlying.is_static
        graph.add_member(
            name,
            Member(
                name=member.name,
                kind=kind,
                is_static=is_static,
                access=member.access,
                type_text=member.type_text,
                using_from=member.using_from,
            ),
        )

    # Nested classes are declared at an outer-qualified name; the nested
    # name itself was already added as a TYPE member of the enclosing
    # class by the parser.
    for nested in decl.nested:
        _declare_class(graph, nested, bag, scope_prefix=f"{name}::")


def _check_using(graph, class_name, member, bag):
    """Validate ``using Base::name;`` in ``class_name`` and return the
    underlying declaration, or ``None`` after diagnosing."""
    target = member.using_from
    if target not in graph:
        bag.error(
            f"using-declaration names unknown class {target!r}",
            member.location,
        )
        return None
    if not graph.is_base_of(target, class_name):
        bag.error(
            f"using-declaration target {target!r} is not a base class of "
            f"{class_name!r}",
            member.location,
        )
        return None
    if not graph.declares(target, member.name):
        bag.error(
            f"{target!r} declares no member {member.name!r} to bring in",
            member.location,
        )
        return None
    return graph.member(target, member.name)


def _declare_variable(
    program: Program, var: VarDecl, bag: DiagnosticBag
) -> None:
    if var.name in program.variables:
        bag.error(f"redefinition of variable {var.name!r}", var.location)
        return
    if var.type_name not in program.hierarchy:
        bag.warning(
            f"variable {var.name!r} has non-class type {var.type_name!r}; "
            "member accesses through it cannot be resolved",
            var.location,
        )
    program.variables[var.name] = var


# ----------------------------------------------------------------------
# Member access resolution
# ----------------------------------------------------------------------


def _resolve_access(
    program: Program, access: MemberAccess, bag: DiagnosticBag
) -> ResolvedAccess:
    class_name = _class_of_access(program, access, bag)
    if class_name is None:
        return ResolvedAccess(access=access, class_name=None, result=None)
    if access.qualifier is not None:
        # x.Base::m resolves m in Base's scope (the paper's `stat`
        # staging); Base must name the static type or one of its bases.
        qualifier = access.qualifier
        if qualifier not in program.hierarchy:
            bag.error(f"{qualifier!r} is not a class", access.location)
            return ResolvedAccess(access=access, class_name=None, result=None)
        if qualifier != class_name and not program.hierarchy.is_base_of(
            qualifier, class_name
        ):
            bag.error(
                f"{qualifier!r} is not a base of {class_name!r}",
                access.location,
            )
            return ResolvedAccess(access=access, class_name=None, result=None)
        class_name = qualifier
    result = program.resolve(class_name, access.member)
    if result.is_ambiguous:
        candidates = ", ".join(
            f"{c}::{access.member}" for c in result.candidates
        )
        bag.error(
            f"request for member {access.member!r} is ambiguous in "
            f"{class_name!r} (candidates: {candidates})",
            access.location,
        )
    elif result.is_not_found:
        bag.error(
            f"{class_name!r} has no member named {access.member!r}",
            access.location,
        )
    return ResolvedAccess(access=access, class_name=class_name, result=result)


def _class_of_access(
    program: Program, access: MemberAccess, bag: DiagnosticBag
) -> Optional[str]:
    if access.op is AccessOp.SCOPE:
        if access.object_name not in program.hierarchy:
            bag.error(
                f"{access.object_name!r} is not a class", access.location
            )
            return None
        return access.object_name
    var = program.variables.get(access.object_name)
    if var is None:
        bag.error(
            f"use of undeclared variable {access.object_name!r}",
            access.location,
        )
        return None
    if var.type_name not in program.hierarchy:
        bag.error(
            f"variable {access.object_name!r} has non-class type "
            f"{var.type_name!r}",
            access.location,
        )
        return None
    wants_arrow = var.is_pointer
    uses_arrow = access.op is AccessOp.ARROW
    if wants_arrow != uses_arrow:
        expected = "->" if wants_arrow else "."
        bag.warning(
            f"member access on {access.object_name!r} should use "
            f"{expected!r}",
            access.location,
        )
    return var.type_name
