"""Source locations and diagnostic rendering for the C++ frontend."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A 1-based (line, column) position with its absolute offset.

    ``filename`` is carried for multi-file translation units (the
    streaming ingestion pipeline parses many files into one hierarchy)
    and excluded from ordering so positions within one buffer still
    compare by position alone.
    """

    line: int
    column: int
    offset: int = 0
    filename: "str | None" = field(default=None, compare=False)

    def __str__(self) -> str:
        if self.filename:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.line}:{self.column}"


START_OF_FILE = SourceLocation(line=1, column=1, offset=0)


def caret_snippet(source: str, location: SourceLocation) -> str:
    """The source line at ``location`` with a caret underneath — the
    classic compiler diagnostic rendering."""
    lines = source.splitlines()
    if not 1 <= location.line <= len(lines):
        return ""
    line = lines[location.line - 1]
    caret = " " * (location.column - 1) + "^"
    return f"{line}\n{caret}"
