"""A lexer for the class-hierarchy subset of C++.

Covers everything the paper's example programs use — class/struct
declarations with virtual and access-qualified bases, member
declarations (data, functions, statics, typedefs, enums, nested
classes), and simple function bodies with member-access expressions —
plus the surface real headers need: namespaces, template keywords,
string/character literals (tokenized, never interpreted), preprocessor
lines (skipped whole), and the compound operators that appear inside
skipped method bodies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.frontend.errors import ParseError
from repro.frontend.source import SourceLocation


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punctuation"
    EOF = "end of file"


KEYWORDS = frozenset(
    {
        "class",
        "struct",
        "virtual",
        "public",
        "protected",
        "private",
        "static",
        "typedef",
        "enum",
        "const",
        "void",
        "int",
        "bool",
        "char",
        "float",
        "double",
        "long",
        "short",
        "signed",
        "unsigned",
        "using",
        "return",
        "namespace",
        "template",
        "typename",
        "inline",
    }
)

# Multi-character punctuators must be listed longest-first.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "->",
    "::",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ":",
    ",",
    ".",
    "=",
    "*",
    "&",
    "<",
    ">",
    "+",
    "-",
    "/",
    "%",
    "|",
    "^",
    "?",
    "~",
    "!",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text


def tokenize(source: str, filename: Optional[str] = None) -> list[Token]:
    """Tokenize a whole source buffer; raises :class:`ParseError` on an
    unrecognised character, an unterminated block comment, or an
    unterminated string/character literal.  ``filename`` (if given) is
    stamped into every token's location for multi-file diagnostics."""
    return list(iter_tokens(source, filename))


def iter_tokens(
    source: str, filename: Optional[str] = None
) -> Iterator[Token]:
    offset = 0
    line = 1
    column = 1
    length = len(source)

    def location() -> SourceLocation:
        return SourceLocation(
            line=line, column=column, offset=offset, filename=filename
        )

    def advance(count: int) -> None:
        nonlocal offset, line, column
        for _ in range(count):
            if offset < length and source[offset] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            offset += 1

    at_line_start = True
    while offset < length:
        char = source[offset]
        if char in " \t\r":
            advance(1)
            continue
        if char == "\n":
            advance(1)
            at_line_start = True
            continue
        if char == "#" and at_line_start:
            # Preprocessor line (#pragma once, include guards, ...):
            # skipped whole, honouring backslash continuations.
            end = offset
            while True:
                newline = source.find("\n", end)
                if newline == -1:
                    end = length
                    break
                if source[newline - 1] == "\\":
                    end = newline + 1
                    continue
                end = newline
                break
            advance(end - offset)
            continue
        if source.startswith("//", offset):
            end = source.find("\n", offset)
            advance((end if end != -1 else length) - offset)
            continue
        if source.startswith("/*", offset):
            end = source.find("*/", offset + 2)
            if end == -1:
                raise ParseError("unterminated block comment", location())
            advance(end + 2 - offset)
            continue
        at_line_start = False
        if char in "\"'":
            quote = char
            start = offset
            start_loc = location()
            advance(1)
            while offset < length and source[offset] != quote:
                if source[offset] == "\\" and offset + 1 < length:
                    advance(2)
                else:
                    advance(1)
            if offset >= length:
                raise ParseError(
                    f"unterminated {quote}...{quote} literal", start_loc
                )
            advance(1)  # the closing quote
            yield Token(TokenKind.STRING, source[start:offset], start_loc)
            continue
        if char.isalpha() or char == "_":
            start = offset
            start_loc = location()
            while offset < length and (
                source[offset].isalnum() or source[offset] == "_"
            ):
                advance(1)
            text = source[start:offset]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, start_loc)
            continue
        if char.isdigit():
            start = offset
            start_loc = location()
            while offset < length and (
                source[offset].isalnum() or source[offset] == "."
            ):
                advance(1)
            yield Token(TokenKind.NUMBER, source[start:offset], start_loc)
            continue
        for punct in PUNCTUATORS:
            if source.startswith(punct, offset):
                start_loc = location()
                advance(len(punct))
                yield Token(TokenKind.PUNCT, punct, start_loc)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", location())
    yield Token(TokenKind.EOF, "", location())
