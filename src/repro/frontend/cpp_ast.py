"""Abstract syntax for the C++ subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.frontend.source import SourceLocation
from repro.hierarchy.members import Access, MemberKind


@dataclass(frozen=True)
class BaseSpecifier:
    """One entry of a base-clause: ``[virtual] [access] Name``."""

    name: str
    virtual: bool
    access: Access
    location: SourceLocation


@dataclass(frozen=True)
class MemberDecl:
    """A member declaration inside a class body.

    ``using_from`` is set for using-declarations (``using Base::name;``);
    the member's kind and staticness are then resolved by sema from the
    named base's declaration.
    """

    name: str
    kind: MemberKind
    is_static: bool
    access: Access
    type_text: str
    location: SourceLocation
    using_from: "str | None" = None


@dataclass
class ClassDecl:
    """``class``/``struct`` declaration with bases, members and nested
    classes."""

    name: str
    is_struct: bool
    bases: list[BaseSpecifier]
    members: list[MemberDecl]
    nested: list["ClassDecl"]
    location: SourceLocation

    @property
    def default_access(self) -> Access:
        return Access.PUBLIC if self.is_struct else Access.PRIVATE


@dataclass(frozen=True)
class VarDecl:
    """``Type x;`` or ``Type *p;`` — in a function body or at file scope."""

    name: str
    type_name: str
    is_pointer: bool
    location: SourceLocation


class AccessOp(enum.Enum):
    """The operator of a member access expression."""

    DOT = "."
    ARROW = "->"
    SCOPE = "::"


@dataclass(frozen=True)
class MemberAccess:
    """A member access expression: ``x.m``, ``p->m``, ``T::m`` or the
    qualified forms ``x.Base::m`` / ``p->Base::m`` (``qualifier`` set)."""

    object_name: str  # variable name, or type name for '::'
    member: str
    op: AccessOp
    location: SourceLocation
    qualifier: "str | None" = None


@dataclass
class FunctionDef:
    """A (free) function definition; only the declarations and member
    accesses inside the body are retained."""

    name: str
    location: SourceLocation
    variables: list[VarDecl] = field(default_factory=list)
    accesses: list[MemberAccess] = field(default_factory=list)


TopLevel = Union[ClassDecl, FunctionDef, VarDecl]


@dataclass
class TranslationUnit:
    declarations: list[TopLevel] = field(default_factory=list)

    def classes(self) -> list[ClassDecl]:
        return [d for d in self.declarations if isinstance(d, ClassDecl)]

    def functions(self) -> list[FunctionDef]:
        return [d for d in self.declarations if isinstance(d, FunctionDef)]

    def file_scope_variables(self) -> list[VarDecl]:
        return [d for d in self.declarations if isinstance(d, VarDecl)]
