"""A frontend for the class-hierarchy subset of C++."""

from repro.frontend.cpp_ast import (
    AccessOp,
    BaseSpecifier,
    ClassDecl,
    FunctionDef,
    MemberAccess,
    MemberDecl,
    TranslationUnit,
    VarDecl,
)
from repro.frontend.errors import (
    Diagnostic,
    DiagnosticBag,
    ParseError,
    SemanticError,
    Severity,
)
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import Parser, parse
from repro.frontend.sema import (
    IncrementalSema,
    Program,
    ResolvedAccess,
    analyze,
    analyze_or_raise,
)
from repro.frontend.source import SourceLocation, caret_snippet

__all__ = [
    "AccessOp",
    "BaseSpecifier",
    "ClassDecl",
    "Diagnostic",
    "DiagnosticBag",
    "FunctionDef",
    "IncrementalSema",
    "MemberAccess",
    "MemberDecl",
    "ParseError",
    "Parser",
    "Program",
    "ResolvedAccess",
    "SemanticError",
    "Severity",
    "SourceLocation",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "VarDecl",
    "analyze",
    "analyze_or_raise",
    "caret_snippet",
    "parse",
    "tokenize",
]
