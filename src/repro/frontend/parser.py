"""Recursive-descent parser for the class-hierarchy subset of C++.

The subset covers the paper's example programs and typical hierarchy
headers: class/struct definitions with (virtual, access-qualified) bases;
data members, member functions (bodies skipped), static members,
typedefs, in-class enums, nested classes, constructors/destructors; and
free functions whose bodies are scanned for variable declarations and
member-access expressions (``e.m``, ``p->m()``, ``T::m``).
"""

from __future__ import annotations

from repro.frontend.cpp_ast import (
    AccessOp,
    BaseSpecifier,
    ClassDecl,
    FunctionDef,
    MemberAccess,
    MemberDecl,
    TranslationUnit,
    VarDecl,
)
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.hierarchy.members import Access, MemberKind

_TYPE_KEYWORDS = frozenset(
    {
        "void",
        "int",
        "bool",
        "char",
        "float",
        "double",
        "long",
        "short",
        "signed",
        "unsigned",
        "const",
    }
)

_ACCESS_KEYWORDS = {
    "public": Access.PUBLIC,
    "protected": Access.PROTECTED,
    "private": Access.PRIVATE,
}


class Parser:
    """Single-use recursive-descent parser over a token buffer."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        if not self._current.is_punct(text):
            raise ParseError(
                f"expected {text!r}, found {self._current!r:.40}",
                self._current.location,
            )
        return self._advance()

    def _expect_ident(self, what: str) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected {what}, found '{self._current}'",
                self._current.location,
            )
        return self._advance()

    def _skip_balanced(self, open_text: str, close_text: str) -> None:
        """Skip past a balanced pair whose opener is the current token."""
        self._expect_punct(open_text)
        depth = 1
        while depth > 0:
            token = self._advance()
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    f"unbalanced {open_text!r}", token.location
                )
            if token.is_punct(open_text):
                depth += 1
            elif token.is_punct(close_text):
                depth -= 1

    def _skip_to_semicolon(self) -> None:
        while not self._current.is_punct(";"):
            if self._current.kind is TokenKind.EOF:
                return
            if self._current.is_punct("{"):
                self._skip_balanced("{", "}")
                continue
            self._advance()
        self._advance()

    # ------------------------------------------------------------------
    # Translation unit
    # ------------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self._current.kind is not TokenKind.EOF:
            declaration = self._parse_top_level()
            if declaration is not None:
                unit.declarations.append(declaration)
        return unit

    def _parse_top_level(self):
        token = self._current
        if token.is_keyword("class", "struct"):
            if self._peek(2).is_punct(";"):
                # Forward declaration: class A;  -- no definition, skip.
                self._advance()
                self._expect_ident("class name")
                self._expect_punct(";")
                return None
            return self._parse_class()
        if token.is_punct(";"):
            self._advance()
            return None
        return self._parse_function_or_variable()

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------

    def _parse_class(self) -> ClassDecl:
        keyword = self._advance()
        is_struct = keyword.text == "struct"
        name = self._expect_ident("class name")
        decl = ClassDecl(
            name=name.text,
            is_struct=is_struct,
            bases=[],
            members=[],
            nested=[],
            location=keyword.location,
        )
        if self._current.is_punct(":"):
            self._advance()
            decl.bases.append(self._parse_base_specifier(is_struct))
            while self._current.is_punct(","):
                self._advance()
                decl.bases.append(self._parse_base_specifier(is_struct))
        self._expect_punct("{")
        self._parse_member_sequence(decl)
        self._expect_punct("}")
        self._expect_punct(";")
        return decl

    def _parse_base_specifier(self, is_struct: bool) -> BaseSpecifier:
        location = self._current.location
        virtual = False
        access = Access.PUBLIC if is_struct else Access.PRIVATE
        # 'virtual' and the access specifier may come in either order.
        while True:
            if self._current.is_keyword("virtual"):
                virtual = True
                self._advance()
            elif self._current.is_keyword(*_ACCESS_KEYWORDS):
                access = _ACCESS_KEYWORDS[self._advance().text]
            else:
                break
        name = self._expect_ident("base class name")
        return BaseSpecifier(
            name=name.text, virtual=virtual, access=access, location=location
        )

    def _parse_member_sequence(self, decl: ClassDecl) -> None:
        access = decl.default_access
        while not self._current.is_punct("}"):
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    f"unterminated body of {decl.name!r}", token.location
                )
            if token.is_keyword(*_ACCESS_KEYWORDS) and self._peek().is_punct(
                ":"
            ):
                access = _ACCESS_KEYWORDS[self._advance().text]
                self._advance()  # ':'
                continue
            if token.is_keyword("typedef"):
                decl.members.append(self._parse_typedef(access))
                continue
            if token.is_keyword("using"):
                decl.members.append(self._parse_using(access))
                continue
            if token.is_keyword("enum"):
                decl.members.extend(self._parse_enum(access))
                continue
            if token.is_keyword("class", "struct"):
                nested = self._parse_class()
                decl.nested.append(nested)
                decl.members.append(
                    MemberDecl(
                        name=nested.name,
                        kind=MemberKind.TYPE,
                        is_static=False,
                        access=access,
                        type_text="class",
                        location=nested.location,
                    )
                )
                continue
            if token.is_punct("~") or (
                token.kind is TokenKind.IDENT
                and token.text == decl.name
                and self._peek().is_punct("(")
            ):
                self._skip_special_member()
                continue
            decl.members.extend(self._parse_member_declaration(access))

    def _parse_typedef(self, access: Access) -> MemberDecl:
        keyword = self._advance()
        type_text = self._parse_type_text()
        name = self._expect_ident("typedef name")
        self._skip_to_semicolon()
        return MemberDecl(
            name=name.text,
            kind=MemberKind.TYPE,
            is_static=False,
            access=access,
            type_text=type_text,
            location=keyword.location,
        )

    def _parse_using(self, access: Access) -> MemberDecl:
        keyword = self._advance()
        base = self._expect_ident("base class name")
        self._expect_punct("::")
        name = self._expect_ident("member name")
        self._skip_to_semicolon()
        return MemberDecl(
            name=name.text,
            kind=MemberKind.DATA,  # refined by sema from the base's decl
            is_static=False,
            access=access,
            type_text="",
            location=keyword.location,
            using_from=base.text,
        )

    def _parse_enum(self, access: Access) -> list[MemberDecl]:
        keyword = self._advance()
        members: list[MemberDecl] = []
        enum_name = None
        if self._current.kind is TokenKind.IDENT:
            enum_name = self._advance()
            members.append(
                MemberDecl(
                    name=enum_name.text,
                    kind=MemberKind.TYPE,
                    is_static=False,
                    access=access,
                    type_text="enum",
                    location=enum_name.location,
                )
            )
        self._expect_punct("{")
        while not self._current.is_punct("}"):
            enumerator = self._expect_ident("enumerator name")
            members.append(
                MemberDecl(
                    name=enumerator.text,
                    kind=MemberKind.ENUMERATOR,
                    is_static=False,
                    access=access,
                    type_text=enum_name.text if enum_name else "enum",
                    location=enumerator.location,
                )
            )
            if self._current.is_punct("="):
                self._advance()
                while not self._current.is_punct(",", "}"):
                    self._advance()
            if self._current.is_punct(","):
                self._advance()
        self._expect_punct("}")
        self._expect_punct(";")
        return members

    def _skip_special_member(self) -> None:
        """Skip a constructor or destructor declaration/definition."""
        if self._current.is_punct("~"):
            self._advance()
            self._expect_ident("destructor name")
        else:
            self._advance()  # the class-name token
        self._skip_balanced("(", ")")
        if self._current.is_punct("{"):
            self._skip_balanced("{", "}")
            if self._current.is_punct(";"):
                self._advance()
        else:
            self._skip_to_semicolon()

    def _parse_member_declaration(self, access: Access) -> list[MemberDecl]:
        location = self._current.location
        is_static = False
        # 'virtual' on a member function is irrelevant to lookup (paper,
        # Section 2); it is consumed and dropped.
        while self._current.is_keyword("static", "virtual"):
            if self._current.text == "static":
                is_static = True
            self._advance()
        type_text = self._parse_type_text()
        members: list[MemberDecl] = []
        while True:
            while self._current.is_punct("*", "&"):
                self._advance()
            name = self._expect_ident("member name")
            if self._current.is_punct("("):
                self._skip_balanced("(", ")")
                if self._current.is_keyword("const"):
                    self._advance()
                kind = MemberKind.FUNCTION
                if self._current.is_punct("{"):
                    self._skip_balanced("{", "}")
                    members.append(
                        MemberDecl(
                            name.text, kind, is_static, access, type_text,
                            location,
                        )
                    )
                    if self._current.is_punct(";"):
                        self._advance()
                    return members
            else:
                kind = MemberKind.DATA
                while self._current.is_punct("["):
                    self._skip_balanced("[", "]")
            members.append(
                MemberDecl(
                    name.text, kind, is_static, access, type_text, location
                )
            )
            if self._current.is_punct(","):
                self._advance()
                continue
            self._skip_to_semicolon()
            return members

    def _parse_type_text(self) -> str:
        parts = []
        while self._current.is_keyword(*_TYPE_KEYWORDS):
            parts.append(self._advance().text)
        if not parts:
            if self._current.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"expected a type, found '{self._current}'",
                    self._current.location,
                )
            parts.append(self._advance().text)
        elif (
            parts == ["const"] and self._current.kind is TokenKind.IDENT
        ):
            parts.append(self._advance().text)
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Functions and file-scope variables
    # ------------------------------------------------------------------

    def _parse_function_or_variable(self):
        location = self._current.location
        # Optional return/variable type; 'main() {...}' has none.
        type_text = None
        if self._current.is_keyword(*_TYPE_KEYWORDS):
            type_text = self._parse_type_text()
        elif (
            self._current.kind is TokenKind.IDENT
            and not self._peek().is_punct("(")
        ):
            type_text = self._advance().text
        is_pointer = False
        while self._current.is_punct("*", "&"):
            is_pointer = True
            self._advance()
        name = self._expect_ident("declarator name")
        if self._current.is_punct("("):
            self._skip_balanced("(", ")")
            function = FunctionDef(name=name.text, location=location)
            if self._current.is_punct("{"):
                self._parse_function_body(function)
            else:
                self._skip_to_semicolon()
            return function
        if type_text is None:
            raise ParseError(
                f"expected a declaration, found '{name}'", location
            )
        self._skip_to_semicolon()
        return VarDecl(
            name=name.text,
            type_name=type_text,
            is_pointer=is_pointer,
            location=location,
        )

    def _parse_function_body(self, function: FunctionDef) -> None:
        self._expect_punct("{")
        depth = 1
        while depth > 0:
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError("unterminated function body", token.location)
            if token.is_punct("{"):
                depth += 1
                self._advance()
                continue
            if token.is_punct("}"):
                depth -= 1
                self._advance()
                continue
            if token.kind is TokenKind.IDENT:
                self._parse_body_statement(function)
                continue
            self._advance()

    def _parse_body_statement(self, function: FunctionDef) -> None:
        first = self._advance()
        nxt = self._current
        if nxt.is_punct(":"):  # '::' lexes as its own token, so this is a label
            self._advance()  # a statement label such as 's1:'
            return
        if nxt.is_punct(".", "->", "::"):
            op = {
                ".": AccessOp.DOT,
                "->": AccessOp.ARROW,
                "::": AccessOp.SCOPE,
            }[self._advance().text]
            member = self._expect_ident("member name")
            qualifier = None
            if op is not AccessOp.SCOPE and self._current.is_punct("::"):
                # Qualified access: x.Base::m / p->Base::m.
                self._advance()
                qualifier = member.text
                member = self._expect_ident("member name")
            function.accesses.append(
                MemberAccess(
                    object_name=first.text,
                    member=member.text,
                    op=op,
                    location=first.location,
                    qualifier=qualifier,
                )
            )
            self._skip_statement_rest()
            return
        if nxt.kind is TokenKind.IDENT or nxt.is_punct("*", "&"):
            is_pointer = False
            while self._current.is_punct("*", "&"):
                is_pointer = True
                self._advance()
            name = self._expect_ident("variable name")
            function.variables.append(
                VarDecl(
                    name=name.text,
                    type_name=first.text,
                    is_pointer=is_pointer,
                    location=first.location,
                )
            )
            self._skip_statement_rest()
            return
        self._skip_statement_rest()

    def _skip_statement_rest(self) -> None:
        while not self._current.is_punct(";", "}"):
            if self._current.kind is TokenKind.EOF:
                return
            if self._current.is_punct("{"):
                self._skip_balanced("{", "}")
                continue
            self._advance()
        if self._current.is_punct(";"):
            self._advance()


def parse(source: str) -> TranslationUnit:
    """Parse a translation unit from source text."""
    return Parser(source).parse()
