"""Recursive-descent parser for the class-hierarchy subset of C++.

The subset covers the paper's example programs and typical hierarchy
headers: class/struct definitions with (virtual, access-qualified) bases;
data members, member functions (bodies skipped), static members,
typedefs, in-class enums, nested classes, constructors/destructors; and
free functions whose bodies are scanned for variable declarations and
member-access expressions (``e.m``, ``p->m()``, ``T::m``).

Real-header growth for the streaming ingestion pipeline:

* ``namespace N { ... }`` blocks are lowered to qualified class names
  (``N::C``), with base names resolved innermost-scope-first against
  the classes declared so far — including classes from *earlier files*
  of a multi-file translation unit (pass one shared ``known_classes``
  set to every :class:`Parser` of the unit).
* ``template`` declarations (class and function templates, at file or
  member scope) are skipped opaquely without desyncing the token
  stream.
* Type texts may be qualified (``ns::Base``) and carry template
  argument lists (``Vec<int>``), which are skipped.
* :meth:`Parser.iter_declarations` streams top-level declarations as
  they complete, so a consumer can lower each class into a live
  hierarchy without waiting for the whole unit.

Every skip loop is EOF-guarded: truncated input raises
:class:`ParseError` (with file/line) rather than hanging or silently
dropping declarations.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.frontend.cpp_ast import (
    AccessOp,
    BaseSpecifier,
    ClassDecl,
    FunctionDef,
    MemberAccess,
    MemberDecl,
    TopLevel,
    TranslationUnit,
    VarDecl,
)
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.hierarchy.members import Access, MemberKind

_TYPE_KEYWORDS = frozenset(
    {
        "void",
        "int",
        "bool",
        "char",
        "float",
        "double",
        "long",
        "short",
        "signed",
        "unsigned",
        "const",
    }
)

_ACCESS_KEYWORDS = {
    "public": Access.PUBLIC,
    "protected": Access.PROTECTED,
    "private": Access.PRIVATE,
}


class Parser:
    """Single-use recursive-descent parser over a token buffer.

    ``filename`` stamps every diagnostic location.  ``known_classes``
    is the set of (qualified) class names visible to base-name
    resolution; the parser adds every class it defines, so sharing one
    set across the parsers of a multi-file unit gives cross-file base
    resolution.
    """

    def __init__(
        self,
        source: str,
        *,
        filename: Optional[str] = None,
        known_classes: Optional[set] = None,
    ) -> None:
        self._tokens = tokenize(source, filename)
        self._index = 0
        self._namespaces: list[str] = []
        self._known = known_classes if known_classes is not None else set()

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        if not self._current.is_punct(text):
            raise ParseError(
                f"expected {text!r}, found {self._current!r:.40}",
                self._current.location,
            )
        return self._advance()

    def _expect_ident(self, what: str) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected {what}, found '{self._current}'",
                self._current.location,
            )
        return self._advance()

    def _check_eof(self, what: str) -> None:
        """Uniform EOF guard for every skip loop: truncated input must
        raise, never livelock (``_advance`` refuses to move past EOF)."""
        token = self._current
        if token.kind is TokenKind.EOF:
            raise ParseError(
                f"unexpected end of file {what}", token.location
            )

    def _skip_balanced(self, open_text: str, close_text: str) -> None:
        """Skip past a balanced pair whose opener is the current token."""
        self._expect_punct(open_text)
        depth = 1
        while depth > 0:
            token = self._advance()
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    f"unbalanced {open_text!r}", token.location
                )
            if token.is_punct(open_text):
                depth += 1
            elif token.is_punct(close_text):
                depth -= 1

    def _skip_angles(self) -> None:
        """Skip a balanced ``<...>`` template argument/parameter list
        whose ``<`` is the current token (``>>`` closes two levels, as
        in ``Vec<Vec<int>>``)."""
        opener = self._expect_punct("<")
        depth = 1
        while depth > 0:
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError("unbalanced '<'", opener.location)
            if token.is_punct("("):
                self._skip_balanced("(", ")")
                continue
            self._advance()
            if token.is_punct("<"):
                depth += 1
            elif token.is_punct(">"):
                depth -= 1
            elif token.is_punct(">>"):
                depth -= 2

    def _skip_to_semicolon(self) -> None:
        while not self._current.is_punct(";"):
            self._check_eof("in declaration (expected ';')")
            if self._current.is_punct("{"):
                self._skip_balanced("{", "}")
                continue
            self._advance()
        self._advance()

    # ------------------------------------------------------------------
    # Translation unit
    # ------------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        unit = TranslationUnit()
        unit.declarations.extend(self.iter_declarations())
        return unit

    def iter_declarations(self) -> Iterator[TopLevel]:
        """Stream top-level declarations as each one completes.

        Namespace blocks are dissolved here: their classes are yielded
        individually under qualified names, as soon as each class body
        closes — this is what lets the ingestion pipeline bring a live
        table current *while* a large file is still being parsed.
        """
        while True:
            token = self._current
            if token.kind is TokenKind.EOF:
                if self._namespaces:
                    raise ParseError(
                        "unterminated namespace "
                        f"{'::'.join(self._namespaces)!r}",
                        token.location,
                    )
                return
            if token.is_keyword("namespace"):
                self._parse_namespace_head()
                continue
            if token.is_punct("}") and self._namespaces:
                self._advance()
                self._namespaces.pop()
                if self._current.is_punct(";"):
                    self._advance()  # tolerate 'namespace N { ... };'
                continue
            declaration = self._parse_top_level()
            if declaration is not None:
                yield declaration

    def _parse_namespace_head(self) -> None:
        self._advance()  # 'namespace'
        token = self._current
        if token.is_punct("{"):
            raise ParseError(
                "anonymous namespaces are outside the subset "
                "(name the namespace)",
                token.location,
            )
        name = self._expect_ident("namespace name")
        parts = [name.text]
        while self._current.is_punct("::"):
            # C++17 nested namespace definition: namespace a::b { ... }
            self._advance()
            parts.append(self._expect_ident("namespace name").text)
        self._expect_punct("{")
        self._namespaces.extend(parts)
        # One popper per opened scope: a::b pushes two, but only one '}'
        # closes the definition, so fold the parts into a single entry.
        if len(parts) > 1:
            for _ in parts:
                self._namespaces.pop()
            self._namespaces.append("::".join(parts))

    @property
    def _prefix(self) -> str:
        return "::".join(self._namespaces) + "::" if self._namespaces else ""

    def _resolve_class_name(self, name: str) -> str:
        """Resolve a (possibly qualified) class reference against the
        enclosing namespace scopes, innermost first, falling back to
        the name as written (sema diagnoses unknown bases)."""
        scopes = self._namespaces
        for depth in range(len(scopes), 0, -1):
            candidate = "::".join(scopes[:depth]) + "::" + name
            if candidate in self._known:
                return candidate
        return name

    def _register_class(self, decl: ClassDecl, prefix: str) -> None:
        qualified = prefix + decl.name if prefix else decl.name
        self._known.add(qualified)
        for nested in decl.nested:
            self._register_class(nested, qualified + "::")

    def _parse_top_level(self) -> Optional[TopLevel]:
        token = self._current
        if token.is_keyword("class", "struct"):
            if self._peek(2).is_punct(";"):
                # Forward declaration: class A; / struct A; — no
                # definition; the later definition (if any) declares it.
                self._advance()
                self._expect_ident("class name")
                self._expect_punct(";")
                return None
            decl = self._parse_class()
            prefix = self._prefix
            self._register_class(decl, prefix)
            if prefix:
                decl.name = prefix + decl.name
            return decl
        if token.is_keyword("template"):
            self._skip_template()
            return None
        if token.is_keyword("typedef"):
            self._skip_to_semicolon()
            return None
        if token.is_keyword("using"):
            # using namespace N; / using alias = T; — no effect on the
            # hierarchy subset, skipped whole.
            self._skip_to_semicolon()
            return None
        if token.is_keyword("enum"):
            self._skip_to_semicolon()
            return None
        if token.is_keyword("inline"):
            self._advance()
            return self._parse_top_level()
        if token.is_punct(";"):
            self._advance()
            return None
        if token.is_keyword(
            "virtual", "public", "protected", "private", "typename"
        ) or token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            raise ParseError(
                f"unsupported top-level construct starting at '{token}'",
                token.location,
            )
        if token.is_punct("}"):
            raise ParseError(
                "stray '}' at top level (unbalanced braces?)",
                token.location,
            )
        return self._parse_function_or_variable()

    def _skip_template(self) -> None:
        """Skip an entire template declaration — parameter list plus
        the templated entity — without desyncing.  Class templates end
        at the ``;`` after the body; function templates end at the
        body's closing ``}``."""
        keyword = self._advance()  # 'template'
        if self._current.is_punct("<"):
            self._skip_angles()
        while True:
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    "unexpected end of file in template declaration "
                    f"(started at {keyword.location})",
                    token.location,
                )
            if token.is_punct(";"):
                self._advance()
                return
            if token.is_punct("{"):
                self._skip_balanced("{", "}")
                if self._current.is_punct(";"):
                    self._advance()
                return
            if token.is_punct("("):
                self._skip_balanced("(", ")")
                continue
            if token.is_punct("<"):
                self._skip_angles()
                continue
            self._advance()

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------

    def _parse_class(self) -> ClassDecl:
        keyword = self._advance()
        is_struct = keyword.text == "struct"
        name = self._expect_ident("class name")
        decl = ClassDecl(
            name=name.text,
            is_struct=is_struct,
            bases=[],
            members=[],
            nested=[],
            location=keyword.location,
        )
        if self._current.is_punct(":"):
            self._advance()
            decl.bases.append(self._parse_base_specifier(is_struct))
            while self._current.is_punct(","):
                self._advance()
                decl.bases.append(self._parse_base_specifier(is_struct))
        self._expect_punct("{")
        self._parse_member_sequence(decl)
        self._expect_punct("}")
        self._expect_punct(";")
        return decl

    def _parse_base_specifier(self, is_struct: bool) -> BaseSpecifier:
        location = self._current.location
        virtual = False
        access = Access.PUBLIC if is_struct else Access.PRIVATE
        # 'virtual' and the access specifier may come in either order.
        while True:
            if self._current.is_keyword("virtual"):
                virtual = True
                self._advance()
            elif self._current.is_keyword(*_ACCESS_KEYWORDS):
                access = _ACCESS_KEYWORDS[self._advance().text]
            else:
                break
        name = self._parse_qualified_name("base class name")
        if self._current.is_punct("<"):
            self._skip_angles()  # Base<T> — opaque, like templates
        return BaseSpecifier(
            name=self._resolve_class_name(name),
            virtual=virtual,
            access=access,
            location=location,
        )

    def _parse_qualified_name(self, what: str) -> str:
        parts = [self._expect_ident(what).text]
        while self._current.is_punct("::") and (
            self._peek().kind is TokenKind.IDENT
        ):
            self._advance()
            parts.append(self._advance().text)
        return "::".join(parts)

    def _parse_member_sequence(self, decl: ClassDecl) -> None:
        access = decl.default_access
        while not self._current.is_punct("}"):
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    f"unterminated body of {decl.name!r}", token.location
                )
            if token.is_keyword(*_ACCESS_KEYWORDS) and self._peek().is_punct(
                ":"
            ):
                access = _ACCESS_KEYWORDS[self._advance().text]
                self._advance()  # ':'
                continue
            if token.is_keyword("typedef"):
                decl.members.append(self._parse_typedef(access))
                continue
            if token.is_keyword("using"):
                decl.members.append(self._parse_using(access))
                continue
            if token.is_keyword("enum"):
                decl.members.extend(self._parse_enum(access))
                continue
            if token.is_keyword("template"):
                self._skip_template()  # opaque member template
                continue
            if token.is_keyword("class", "struct"):
                if self._peek(2).is_punct(";"):
                    # Nested forward declaration: class Inner;
                    self._advance()
                    self._expect_ident("class name")
                    self._expect_punct(";")
                    continue
                nested = self._parse_class()
                decl.nested.append(nested)
                decl.members.append(
                    MemberDecl(
                        name=nested.name,
                        kind=MemberKind.TYPE,
                        is_static=False,
                        access=access,
                        type_text="class",
                        location=nested.location,
                    )
                )
                continue
            if token.is_punct("~") or (
                token.kind is TokenKind.IDENT
                and token.text == decl.name
                and self._peek().is_punct("(")
            ):
                self._skip_special_member()
                continue
            decl.members.extend(self._parse_member_declaration(access))

    def _parse_typedef(self, access: Access) -> MemberDecl:
        keyword = self._advance()
        type_text = self._parse_type_text()
        name = self._expect_ident("typedef name")
        self._skip_to_semicolon()
        return MemberDecl(
            name=name.text,
            kind=MemberKind.TYPE,
            is_static=False,
            access=access,
            type_text=type_text,
            location=keyword.location,
        )

    def _parse_using(self, access: Access) -> MemberDecl:
        keyword = self._advance()
        qualified = self._parse_qualified_name("base class name")
        if "::" not in qualified:
            raise ParseError(
                "expected a qualified member name "
                f"(Base::member) after 'using', found {qualified!r}",
                keyword.location,
            )
        base, _, name = qualified.rpartition("::")
        self._skip_to_semicolon()
        return MemberDecl(
            name=name,
            kind=MemberKind.DATA,  # refined by sema from the base's decl
            is_static=False,
            access=access,
            type_text="",
            location=keyword.location,
            using_from=self._resolve_class_name(base),
        )

    def _parse_enum(self, access: Access) -> list[MemberDecl]:
        keyword = self._advance()
        del keyword
        members: list[MemberDecl] = []
        enum_name = None
        if self._current.kind is TokenKind.IDENT:
            enum_name = self._advance()
            members.append(
                MemberDecl(
                    name=enum_name.text,
                    kind=MemberKind.TYPE,
                    is_static=False,
                    access=access,
                    type_text="enum",
                    location=enum_name.location,
                )
            )
        self._expect_punct("{")
        while not self._current.is_punct("}"):
            enumerator = self._expect_ident("enumerator name")
            members.append(
                MemberDecl(
                    name=enumerator.text,
                    kind=MemberKind.ENUMERATOR,
                    is_static=False,
                    access=access,
                    type_text=enum_name.text if enum_name else "enum",
                    location=enumerator.location,
                )
            )
            if self._current.is_punct("="):
                self._advance()
                while not self._current.is_punct(",", "}"):
                    self._check_eof("in enumerator initializer")
                    if self._current.is_punct("("):
                        self._skip_balanced("(", ")")
                        continue
                    self._advance()
            if self._current.is_punct(","):
                self._advance()
        self._expect_punct("}")
        self._expect_punct(";")
        return members

    def _skip_special_member(self) -> None:
        """Skip a constructor or destructor declaration/definition.

        Shapes: ``A();``, ``A() {}``, ``~A() {}``, ``A() : x(1), B() {}``
        (initializer list), ``A(int v = 0);`` (default arguments).  The
        initializer list is skipped only up to the body's ``{``; the
        balanced body ends the member — earlier code fell into
        ``_skip_to_semicolon`` here, which swallowed the body *and kept
        consuming until the next ';'*, silently deleting the member
        declaration that followed the constructor."""
        if self._current.is_punct("~"):
            self._advance()
            self._expect_ident("destructor name")
        else:
            self._advance()  # the class-name token
        self._skip_balanced("(", ")")
        if self._current.is_punct(":"):
            self._advance()
            while not self._current.is_punct("{"):
                self._check_eof("in constructor initializer list")
                if self._current.is_punct("("):
                    self._skip_balanced("(", ")")
                    continue
                if self._current.is_punct(";", "}"):
                    raise ParseError(
                        "constructor initializer list without a body",
                        self._current.location,
                    )
                self._advance()
        if self._current.is_punct("{"):
            self._skip_balanced("{", "}")
            if self._current.is_punct(";"):
                self._advance()
        else:
            self._skip_to_semicolon()

    def _parse_member_declaration(self, access: Access) -> list[MemberDecl]:
        location = self._current.location
        is_static = False
        # 'virtual' on a member function is irrelevant to lookup (paper,
        # Section 2); 'inline' likewise.  Both are consumed and dropped.
        while self._current.is_keyword("static", "virtual", "inline"):
            if self._current.text == "static":
                is_static = True
            self._advance()
        type_text = self._parse_type_text()
        members: list[MemberDecl] = []
        while True:
            while self._current.is_punct("*", "&"):
                self._advance()
            name = self._expect_ident("member name")
            if self._current.is_punct("("):
                self._skip_balanced("(", ")")
                if self._current.is_keyword("const"):
                    self._advance()
                kind = MemberKind.FUNCTION
                if self._current.is_punct("{"):
                    # Inline method body: balanced skip ends the member.
                    self._skip_balanced("{", "}")
                    members.append(
                        MemberDecl(
                            name.text, kind, is_static, access, type_text,
                            location,
                        )
                    )
                    if self._current.is_punct(";"):
                        self._advance()
                    return members
            else:
                kind = MemberKind.DATA
                while self._current.is_punct("["):
                    self._skip_balanced("[", "]")
            members.append(
                MemberDecl(
                    name.text, kind, is_static, access, type_text, location
                )
            )
            if self._current.is_punct(","):
                self._advance()
                continue
            self._skip_to_semicolon()
            return members

    def _parse_type_text(self) -> str:
        parts = []
        while self._current.is_keyword(*_TYPE_KEYWORDS):
            parts.append(self._advance().text)
        if not parts:
            if self._current.kind is not TokenKind.IDENT:
                raise ParseError(
                    f"expected a type, found '{self._current}'",
                    self._current.location,
                )
            parts.append(self._parse_qualified_name("type name"))
            if self._current.is_punct("<"):
                self._skip_angles()  # template arguments are opaque
        elif (
            parts == ["const"] and self._current.kind is TokenKind.IDENT
        ):
            parts.append(self._parse_qualified_name("type name"))
            if self._current.is_punct("<"):
                self._skip_angles()
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Functions and file-scope variables
    # ------------------------------------------------------------------

    def _parse_function_or_variable(self):
        location = self._current.location
        # Optional return/variable type; 'main() {...}' has none.
        type_text = None
        if self._current.is_keyword(*_TYPE_KEYWORDS):
            type_text = self._parse_type_text()
        elif (
            self._current.kind is TokenKind.IDENT
            and not self._peek().is_punct("(")
        ):
            type_text = self._parse_type_text()
        is_pointer = False
        while self._current.is_punct("*", "&"):
            is_pointer = True
            self._advance()
        name = self._expect_ident("declarator name")
        if self._current.is_punct("("):
            self._skip_balanced("(", ")")
            function = FunctionDef(name=name.text, location=location)
            if self._current.is_punct("{"):
                self._parse_function_body(function)
            else:
                self._skip_to_semicolon()
            return function
        if type_text is None:
            raise ParseError(
                f"expected a declaration, found '{name}'", location
            )
        self._skip_to_semicolon()
        return VarDecl(
            name=name.text,
            type_name=self._resolve_class_name(type_text),
            is_pointer=is_pointer,
            location=location,
        )

    def _parse_function_body(self, function: FunctionDef) -> None:
        self._expect_punct("{")
        depth = 1
        while depth > 0:
            token = self._current
            if token.kind is TokenKind.EOF:
                raise ParseError("unterminated function body", token.location)
            if token.is_punct("{"):
                depth += 1
                self._advance()
                continue
            if token.is_punct("}"):
                depth -= 1
                self._advance()
                continue
            if token.kind is TokenKind.IDENT:
                self._parse_body_statement(function)
                continue
            self._advance()

    def _parse_body_statement(self, function: FunctionDef) -> None:
        first = self._advance()
        nxt = self._current
        if nxt.is_punct(":"):  # '::' lexes as its own token, so this is a label
            self._advance()  # a statement label such as 's1:'
            return
        if nxt.is_punct(".", "->", "::"):
            op = {
                ".": AccessOp.DOT,
                "->": AccessOp.ARROW,
                "::": AccessOp.SCOPE,
            }[self._advance().text]
            member = self._expect_ident("member name")
            qualifier = None
            if op is not AccessOp.SCOPE and self._current.is_punct("::"):
                # Qualified access: x.Base::m / p->Base::m.
                self._advance()
                qualifier = member.text
                member = self._expect_ident("member name")
            object_name = first.text
            if op is AccessOp.SCOPE:
                object_name = self._resolve_class_name(object_name)
            function.accesses.append(
                MemberAccess(
                    object_name=object_name,
                    member=member.text,
                    op=op,
                    location=first.location,
                    qualifier=qualifier,
                )
            )
            self._skip_statement_rest()
            return
        if nxt.kind is TokenKind.IDENT or nxt.is_punct("*", "&"):
            is_pointer = False
            while self._current.is_punct("*", "&"):
                is_pointer = True
                self._advance()
            name = self._expect_ident("variable name")
            function.variables.append(
                VarDecl(
                    name=name.text,
                    type_name=self._resolve_class_name(first.text),
                    is_pointer=is_pointer,
                    location=first.location,
                )
            )
            self._skip_statement_rest()
            return
        self._skip_statement_rest()

    def _skip_statement_rest(self) -> None:
        while not self._current.is_punct(";", "}"):
            if self._current.kind is TokenKind.EOF:
                # The enclosing _parse_function_body loop raises the
                # better "unterminated function body" diagnostic.
                return
            if self._current.is_punct("{"):
                self._skip_balanced("{", "}")
                continue
            self._advance()
        if self._current.is_punct(";"):
            self._advance()


def parse(
    source: str,
    *,
    filename: Optional[str] = None,
    known_classes: Optional[set] = None,
) -> TranslationUnit:
    """Parse a translation unit from source text."""
    return Parser(
        source, filename=filename, known_classes=known_classes
    ).parse()
