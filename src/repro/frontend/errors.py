"""Diagnostics for the C++ frontend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import FrontendError
from repro.frontend.source import SourceLocation, caret_snippet


class Severity(enum.Enum):
    """Diagnostic severity, compiler-style."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One compiler message, renderable with a caret snippet."""

    severity: Severity
    message: str
    location: SourceLocation

    def render(self, source: str | None = None) -> str:
        head = f"{self.location}: {self.severity}: {self.message}"
        if source is None:
            return head
        snippet = caret_snippet(source, self.location)
        return f"{head}\n{snippet}" if snippet else head

    def __str__(self) -> str:
        return self.render()


class ParseError(FrontendError):
    """A syntax error, raised immediately by the parser."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: error: {message}")
        self.diagnostic = Diagnostic(Severity.ERROR, message, location)


class SemanticError(FrontendError):
    """Raised by ``analyze_or_raise`` when semantic errors were found."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        summary = "; ".join(str(d) for d in diagnostics[:3])
        if len(diagnostics) > 3:
            summary += f" (+{len(diagnostics) - 3} more)"
        super().__init__(summary)
        self.diagnostics = diagnostics


@dataclass
class DiagnosticBag:
    """Accumulates diagnostics during semantic analysis."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, message: str, location: SourceLocation) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, location))

    def warning(self, message: str, location: SourceLocation) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.WARNING, message, location)
        )

    def note(self, message: str, location: SourceLocation) -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, location))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)
