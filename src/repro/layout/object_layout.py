"""Object layout from the subobject structure.

The paper motivates its algorithm partly by the compiler's need to
"perform static analysis and construct virtual-function tables".  This
module implements the classic layout scheme the subobject formalism
induces: the non-virtual subobject tree of a class is laid out
depth-first in base-declaration order, each subobject contributing its
own non-static data members, and the shared virtual-base subobjects are
placed once at the end of the complete object (the strategy of
traditional C++ ABIs, simplified to unit-sized members).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.equivalence import SubobjectKey
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import MemberKind
from repro.subobjects.graph import Subobject, SubobjectGraph


@dataclass(frozen=True)
class FieldSlot:
    """One allocated member: which subobject it belongs to, its offset."""

    offset: int
    subobject: SubobjectKey
    class_name: str
    member: str

    def __str__(self) -> str:
        return f"{self.offset:4d}: {self.class_name}::{self.member}  (in {self.subobject})"


@dataclass(frozen=True)
class SubobjectRegion:
    """The extent of one subobject within the complete object."""

    subobject: SubobjectKey
    offset: int
    size: int
    virtual: bool


@dataclass
class ObjectLayout:
    """The complete layout of one class's objects."""

    complete_type: str
    slots: list[FieldSlot]
    regions: list[SubobjectRegion]

    @property
    def size(self) -> int:
        return len(self.slots)

    def region_of(self, key: SubobjectKey) -> SubobjectRegion:
        for region in self.regions:
            if region.subobject == key:
                return region
        raise KeyError(f"no region for {key}")

    def offset_of(self, key: SubobjectKey) -> int:
        return self.region_of(key).offset

    def slot_for(self, key: SubobjectKey, member: str) -> FieldSlot:
        """The allocated slot of ``member`` within the given subobject."""
        for slot in self.slots:
            if slot.subobject == key and slot.member == member:
                return slot
        raise KeyError(f"subobject {key} has no field {member!r}")

    def render(self) -> str:
        lines = [f"layout of {self.complete_type} ({self.size} units):"]
        lines.extend(f"  {slot}" for slot in self.slots)
        return "\n".join(lines)


def compute_layout(
    graph: ClassHierarchyGraph, complete_type: str
) -> ObjectLayout:
    """Lay out a complete object: non-virtual subobject tree depth-first,
    then the shared virtual-base subobjects (recursively laid out the
    same way, skipping parts already placed)."""
    subobject_graph = SubobjectGraph(graph, complete_type)
    slots: list[FieldSlot] = []
    regions: list[SubobjectRegion] = []
    placed: set[SubobjectKey] = set()

    def place(subobject: Subobject, *, virtual_region: bool) -> None:
        if subobject.key in placed:
            return
        placed.add(subobject.key)
        start = len(slots)
        # Non-virtual base subobjects first (declaration order), then the
        # subobject's own members.
        for child in subobject_graph.base_subobjects(subobject.key):
            if not child.is_virtual:
                place(child, virtual_region=virtual_region)
        for member in graph.declared_members(subobject.class_name).values():
            if member.is_static or member.kind is not MemberKind.DATA:
                continue
            slots.append(
                FieldSlot(
                    offset=len(slots),
                    subobject=subobject.key,
                    class_name=subobject.class_name,
                    member=member.name,
                )
            )
        regions.append(
            SubobjectRegion(
                subobject=subobject.key,
                offset=start,
                size=len(slots) - start,
                virtual=virtual_region,
            )
        )

    place(subobject_graph.root(), virtual_region=False)
    # Shared virtual-base subobjects, in BFS discovery order, each laid
    # out once (their own virtual bases may recurse).
    for subobject in subobject_graph.bfs_order():
        if subobject.is_virtual:
            place(subobject, virtual_region=True)

    return ObjectLayout(
        complete_type=complete_type, slots=slots, regions=regions
    )
