"""Dispatch-table construction from the lookup table.

For each class the compiler must know, for every member name visible in
it, which declaration a call resolves to — this is exactly the paper's
``lookup[C, m]`` table, and the paper cites "constructing
virtual-function tables" as a primary application.  A
:class:`DispatchTable` packages that per-class view: one entry per
visible function member, its resolved declaring class, and the subobject
the implicit ``this`` must be adjusted to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.equivalence import SubobjectKey
from repro.core.lookup import MemberLookupTable, build_lookup_table
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import MemberKind
from repro.layout.object_layout import ObjectLayout, compute_layout


@dataclass(frozen=True)
class DispatchEntry:
    """One slot of a class's dispatch table."""

    member: str
    declaring_class: Optional[str]  # None when the call would be ambiguous
    subobject: Optional[SubobjectKey]
    this_offset: Optional[int]
    ambiguous: bool = False

    def __str__(self) -> str:
        if self.ambiguous:
            return f"{self.member}: <ambiguous>"
        return (
            f"{self.member}: {self.declaring_class}::{self.member} "
            f"(this += {self.this_offset})"
        )


@dataclass
class DispatchTable:
    class_name: str
    entries: list[DispatchEntry]
    layout: ObjectLayout

    def entry(self, member: str) -> DispatchEntry:
        for candidate in self.entries:
            if candidate.member == member:
                return candidate
        raise KeyError(f"{self.class_name} dispatches no member {member!r}")

    def render(self) -> str:
        lines = [f"dispatch table of {self.class_name}:"]
        lines.extend(f"  {entry}" for entry in self.entries)
        return "\n".join(lines)


def build_dispatch_table(
    graph: ClassHierarchyGraph,
    class_name: str,
    *,
    table: Optional[MemberLookupTable] = None,
    functions_only: bool = True,
) -> DispatchTable:
    """Construct the dispatch table of one class.

    ``this_offset`` is taken from the object layout: the offset of the
    subobject whose member the call resolves to (the adjustment a
    virtual-call thunk would apply).
    """
    table = table if table is not None else build_lookup_table(graph)
    layout = compute_layout(graph, class_name)
    entries: list[DispatchEntry] = []
    for member in table.visible_members(class_name):
        if functions_only and not _is_function_somewhere(graph, member):
            continue
        result = table.lookup(class_name, member)
        if result.is_ambiguous:
            entries.append(
                DispatchEntry(
                    member=member,
                    declaring_class=None,
                    subobject=None,
                    this_offset=None,
                    ambiguous=True,
                )
            )
            continue
        key = result.subobject
        entries.append(
            DispatchEntry(
                member=member,
                declaring_class=result.declaring_class,
                subobject=key,
                this_offset=layout.offset_of(key) if key is not None else None,
            )
        )
    return DispatchTable(class_name=class_name, entries=entries, layout=layout)


def _is_function_somewhere(graph: ClassHierarchyGraph, member: str) -> bool:
    return any(
        declared.kind is MemberKind.FUNCTION and declared.name == member
        for _cls, declared in graph.iter_class_members()
    )
