"""Object layout and dispatch tables — the vtable application."""

from repro.layout.dispatch import (
    DispatchEntry,
    DispatchTable,
    build_dispatch_table,
)
from repro.layout.vtable import VTable, VTableSet, VTableSlot, build_vtables
from repro.layout.object_layout import (
    FieldSlot,
    ObjectLayout,
    SubobjectRegion,
    compute_layout,
)

__all__ = [
    "DispatchEntry",
    "DispatchTable",
    "FieldSlot",
    "ObjectLayout",
    "SubobjectRegion",
    "VTable",
    "VTableSet",
    "VTableSlot",
    "build_dispatch_table",
    "build_vtables",
    "compute_layout",
]
