"""Virtual-function tables from the lookup table.

The paper names "constructing virtual-function tables" as a primary
compiler application of member lookup.  This module models the classic
ABI shape: a complete object of type ``T`` carries one vtable per
subobject that has function members visible in it; each slot names the
*final overrider* of that function in ``T`` — which is exactly
``lookup(T, f)`` (the Rossie-Friedman ``dyn`` staging) — together with
the ``this``-adjustment from the vtable's subobject to the overrider's
subobject.

C++ makes a program ill-formed only when a call actually needs an
ambiguous final overrider; slots therefore carry an ``ambiguous`` flag
rather than failing the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.equivalence import SubobjectKey
from repro.core.lookup import MemberLookupTable, build_lookup_table
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import MemberKind
from repro.layout.object_layout import ObjectLayout, compute_layout
from repro.subobjects.graph import SubobjectGraph


@dataclass(frozen=True)
class VTableSlot:
    """One virtual-dispatch slot."""

    member: str
    overrider_class: Optional[str]  # None when the overrider is ambiguous
    overrider_subobject: Optional[SubobjectKey]
    this_adjustment: Optional[int]
    ambiguous: bool = False

    def __str__(self) -> str:
        if self.ambiguous:
            return f"{self.member}: <ambiguous final overrider>"
        sign = "+" if (self.this_adjustment or 0) >= 0 else ""
        return (
            f"{self.member}: {self.overrider_class}::{self.member} "
            f"(this {sign}{self.this_adjustment})"
        )


@dataclass(frozen=True)
class VTable:
    """The vtable attached to one subobject of the complete object."""

    subobject: SubobjectKey
    slots: tuple[VTableSlot, ...]

    def slot(self, member: str) -> VTableSlot:
        for candidate in self.slots:
            if candidate.member == member:
                return candidate
        raise KeyError(f"vtable of {self.subobject} has no slot {member!r}")

    def render(self) -> str:
        lines = [f"vtable for {self.subobject}:"]
        lines.extend(f"  {slot}" for slot in self.slots)
        return "\n".join(lines)


@dataclass
class VTableSet:
    """All vtables of one complete type, plus the layout they refer to."""

    complete_type: str
    vtables: tuple[VTable, ...]
    layout: ObjectLayout

    def for_subobject(self, key: SubobjectKey) -> VTable:
        for vtable in self.vtables:
            if vtable.subobject == key:
                return vtable
        raise KeyError(f"no vtable for subobject {key}")

    def render(self) -> str:
        return "\n".join(vtable.render() for vtable in self.vtables)


def _function_names(graph: ClassHierarchyGraph) -> frozenset[str]:
    return frozenset(
        member.name
        for _cls, member in graph.iter_class_members()
        if member.kind is MemberKind.FUNCTION and not member.is_static
    )


def build_vtables(
    graph: ClassHierarchyGraph,
    complete_type: str,
    *,
    table: Optional[MemberLookupTable] = None,
) -> VTableSet:
    """Construct every vtable of a complete object of ``complete_type``.

    For each subobject ``s`` and each function name visible in ``s``'s
    class, the slot is the final overrider ``lookup(T, f)``; the
    ``this`` adjustment is the layout-offset difference between the
    overrider's subobject and ``s``.
    """
    table = table if table is not None else build_lookup_table(graph)
    layout = compute_layout(graph, complete_type)
    functions = _function_names(graph)
    subobjects = SubobjectGraph(graph, complete_type)

    vtables = []
    for subobject in subobjects.bfs_order():
        slots = []
        for member in table.visible_members(subobject.class_name):
            if member not in functions:
                continue
            final = table.lookup(complete_type, member)
            if final.is_ambiguous:
                slots.append(
                    VTableSlot(
                        member=member,
                        overrider_class=None,
                        overrider_subobject=None,
                        this_adjustment=None,
                        ambiguous=True,
                    )
                )
                continue
            assert final.is_unique  # visible here implies visible in T
            target_key = final.subobject
            adjustment = None
            if target_key is not None:
                adjustment = layout.offset_of(target_key) - layout.offset_of(
                    subobject.key
                )
            slots.append(
                VTableSlot(
                    member=member,
                    overrider_class=final.declaring_class,
                    overrider_subobject=target_key,
                    this_adjustment=adjustment,
                )
            )
        if slots:
            vtables.append(
                VTable(subobject=subobject.key, slots=tuple(slots))
            )
    return VTableSet(
        complete_type=complete_type, vtables=tuple(vtables), layout=layout
    )
