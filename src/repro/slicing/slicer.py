"""Class hierarchy slicing driven by member lookup.

The paper (Section 1) notes the lookup algorithm "is also useful in
efficiently implementing class hierarchy slicing", citing Tip et al.
(OOPSLA '96).  This module implements a conservative slicer in that
spirit: given a hierarchy and the set of lookup queries a program
actually performs, produce the smallest sub-hierarchy this construction
guarantees to preserve every queried lookup result on.

Soundness argument (also verified property-style in the tests): for a
query ``lookup(C, m)``,

* every definition of ``m`` reaching ``C`` originates in a class that
  declares ``m`` and is a (reflexive) base of ``C`` — all kept;
* dominance between two definitions ``[a]``, ``[b]`` with ``mdc = C`` is
  witnessed by paths ``d . a`` from ``ldc(b)`` to ``C`` — every class on
  such a path lies on a path from an ``m``-declaring base of ``C`` to
  ``C``, and all such path classes are kept, with their edges;

so both the definition sets and the dominance relation restricted to
them are unchanged in the slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hierarchy.graph import ClassHierarchyGraph


@dataclass(frozen=True)
class SliceCriterion:
    """One lookup the slice must preserve."""

    class_name: str
    member: str


@dataclass
class HierarchySlice:
    """The result of slicing: the reduced hierarchy plus bookkeeping."""

    hierarchy: ClassHierarchyGraph
    kept_classes: frozenset[str]
    kept_members: dict[str, frozenset[str]]
    criteria: tuple[SliceCriterion, ...]

    def reduction(self, original: ClassHierarchyGraph) -> float:
        """Fraction of classes removed."""
        if len(original) == 0:
            return 0.0
        return 1.0 - len(self.kept_classes) / len(original)


def slice_hierarchy(
    graph: ClassHierarchyGraph,
    criteria: Iterable[SliceCriterion | tuple[str, str]],
) -> HierarchySlice:
    """Compute the sub-hierarchy preserving every criterion lookup."""
    graph.validate()
    normalised = tuple(
        c if isinstance(c, SliceCriterion) else SliceCriterion(*c)
        for c in criteria
    )

    kept: set[str] = set()
    kept_members: dict[str, set[str]] = {}
    for criterion in normalised:
        graph.direct_bases(criterion.class_name)  # validates the name
        relevant = _classes_on_definition_paths(graph, criterion)
        kept |= relevant
        for name in relevant:
            if graph.declares(name, criterion.member):
                kept_members.setdefault(name, set()).add(criterion.member)

    sliced = ClassHierarchyGraph()
    for name in graph.classes:  # preserve declaration order
        if name not in kept:
            continue
        members = [
            graph.member(name, m) for m in sorted(kept_members.get(name, ()))
        ]
        sliced.add_class(name, members, is_struct=graph.is_struct(name))
    for edge in graph.edges:
        if edge.base in kept and edge.derived in kept:
            sliced.add_edge(
                edge.base,
                edge.derived,
                virtual=edge.virtual,
                access=edge.access,
            )

    return HierarchySlice(
        hierarchy=sliced,
        kept_classes=frozenset(kept),
        kept_members={k: frozenset(v) for k, v in kept_members.items()},
        criteria=normalised,
    )


def _classes_on_definition_paths(
    graph: ClassHierarchyGraph, criterion: SliceCriterion
) -> set[str]:
    """All classes lying on some path from an ``m``-declaring (reflexive)
    base of ``C`` to ``C`` — computed as {X : X reaches C} intersected
    with {X : some declarer reaches X}."""
    target = criterion.class_name
    reaches_target = {target} | {
        name for name in graph.classes if graph.is_base_of(name, target)
    }
    declarers = {
        name
        for name in reaches_target
        if graph.declares(name, criterion.member)
    }
    if not declarers:
        return {target}
    reachable_from_declarer: set[str] = set(declarers)
    frontier = list(declarers)
    while frontier:
        current = frontier.pop()
        for edge in graph.direct_derived(current):
            if (
                edge.derived in reaches_target
                and edge.derived not in reachable_from_declarer
            ):
                reachable_from_declarer.add(edge.derived)
                frontier.append(edge.derived)
    return (reachable_from_declarer & reaches_target) | {target}
