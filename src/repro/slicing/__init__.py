"""Class hierarchy slicing (the Tip et al. application, Section 1)."""

from repro.slicing.slicer import HierarchySlice, SliceCriterion, slice_hierarchy

__all__ = ["HierarchySlice", "SliceCriterion", "slice_hierarchy"]
