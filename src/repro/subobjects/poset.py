"""The subobject poset and dominance as containment-reachability.

For subobjects of the same complete object, ``[a] dominates [b]`` iff
``[b]`` can be reached from ``[a]`` by walking containment edges toward
base subobjects (reflexively): every ``b' = d . a`` with ``a`` as a
suffix names a base subobject of ``[a]``, and conversely.  This gives a
polynomial decision procedure *given* the materialised subobject graph —
the graph itself may of course be exponential, which is why the paper's
algorithm never builds it.

Theorem 1 (the ≈-class poset is isomorphic to the Rossie-Friedman
subobject poset) is checked by :func:`isomorphic_to_path_classes`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.dominance import dominates_paths, is_partial_order
from repro.core.equivalence import SubobjectKey, subobject_key
from repro.core.enumeration import iter_paths_to
from repro.subobjects.graph import Subobject, SubobjectGraph


class SubobjectPoset:
    """Dominance over the subobjects of one complete type, with memoised
    reachability."""

    def __init__(self, graph: SubobjectGraph) -> None:
        self._graph = graph
        self._reachable: dict[SubobjectKey, frozenset[SubobjectKey]] = {}

    @property
    def subobject_graph(self) -> SubobjectGraph:
        return self._graph

    def dominated_by(self, key: SubobjectKey) -> frozenset[SubobjectKey]:
        """All subobjects dominated by ``key`` (including itself): the
        base-subobject closure."""
        cached = self._reachable.get(key)
        if cached is not None:
            return cached
        result: set[SubobjectKey] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            for child in self._graph.base_subobjects(current):
                stack.append(child.key)
        frozen = frozenset(result)
        self._reachable[key] = frozen
        return frozen

    def dominates(self, a: SubobjectKey, b: SubobjectKey) -> bool:
        """Definition 6 via reachability."""
        return b in self.dominated_by(a)

    def most_dominant(
        self, candidates: Iterable[Subobject]
    ) -> Subobject | None:
        """Definition 8: the unique element dominating every other, if any."""
        items = list(candidates)
        for candidate in items:
            if all(
                self.dominates(candidate.key, other.key) for other in items
            ):
                return candidate
        return None

    def maximal(self, candidates: Iterable[Subobject]) -> list[Subobject]:
        """Definition 16: elements not strictly dominated by another."""
        items = list(candidates)
        result = []
        for current in items:
            strictly_dominated = any(
                other.key != current.key
                and self.dominates(other.key, current.key)
                for other in items
            )
            if not strictly_dominated:
                result.append(current)
        return result

    def check_partial_order(self) -> bool:
        """Lemma 2: dominance on subobjects is a partial order."""
        keys = [s.key for s in self._graph.subobjects()]
        return is_partial_order(keys, self.dominates)


def isomorphic_to_path_classes(subobject_graph: SubobjectGraph) -> bool:
    """Theorem 1, checked extensionally for one complete type.

    The ≈-classes of paths into the complete type must be in bijection
    with the materialised subobjects, and path-level dominance
    (Definition 5, executed literally) must agree with
    containment-reachability on every pair.  Exponential; for tests on
    small graphs only.
    """
    hierarchy = subobject_graph.hierarchy
    complete = subobject_graph.complete_type
    poset = SubobjectPoset(subobject_graph)

    class_reps: dict[SubobjectKey, list] = {}
    for path in iter_paths_to(hierarchy, complete):
        class_reps.setdefault(subobject_key(path), []).append(path)

    materialised = {s.key for s in subobject_graph.subobjects()}
    if set(class_reps) != materialised:
        return False

    keys = list(class_reps)
    for a in keys:
        for b in keys:
            path_level = dominates_paths(
                hierarchy, class_reps[a][0], class_reps[b][0]
            )
            if path_level != poset.dominates(a, b):
                return False
    return True
