"""The Rossie-Friedman subobject substrate: the reference semantics."""

from repro.subobjects.graph import (
    Subobject,
    SubobjectGraph,
    subobject_count,
    total_subobject_count,
)
from repro.subobjects.poset import SubobjectPoset, isomorphic_to_path_classes
from repro.subobjects.reference import ReferenceLookup, defns, reference_lookup
from repro.subobjects.rossie_friedman import RossieFriedmanLookup

__all__ = [
    "ReferenceLookup",
    "RossieFriedmanLookup",
    "Subobject",
    "SubobjectGraph",
    "SubobjectPoset",
    "defns",
    "isomorphic_to_path_classes",
    "reference_lookup",
    "subobject_count",
    "total_subobject_count",
]
