"""The subobject graph (Rossie & Friedman, OOPSLA '95; paper Sections 1-3).

A complete object of class ``C`` is composed of *subobjects* — one for
each ≈-equivalence class of paths into ``C`` (paper, Section 3; Theorem 1
states the correspondence with Rossie-Friedman subobjects).  This module
*materialises* those subobjects and the containment edges between them.

The materialised graph can be exponentially larger than the CHG (the very
problem the paper's algorithm avoids), e.g. a ladder of ``k`` non-virtual
diamonds yields ``2^k`` copies of the root class.  It exists here as the
reference semantics and as the substrate for the g++-style baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.equivalence import SubobjectKey, subobject_key
from repro.core.paths import Path
from repro.hierarchy.graph import ClassHierarchyGraph


@dataclass(frozen=True)
class Subobject:
    """A subobject of a complete object: a ≈-class with a representative
    path kept for display and for witness extraction."""

    key: SubobjectKey
    representative: Path

    @property
    def class_name(self) -> str:
        """The class this subobject is an instance of (the ``ldc``)."""
        return self.key.ldc

    @property
    def complete_type(self) -> str:
        """The class whose complete object contains this subobject."""
        return self.key.complete

    @property
    def is_virtual(self) -> bool:
        return self.key.is_virtual

    def __str__(self) -> str:
        return str(self.key)


class SubobjectGraph:
    """All subobjects of one complete type, with containment edges.

    Edges are oriented like CHG edges — from the base-class subobject to
    the subobject that directly contains it — so the paper's Figures 1(c)
    and 2(c) are drawn directly from this structure.
    """

    def __init__(self, graph: ClassHierarchyGraph, complete_type: str) -> None:
        graph.direct_bases(complete_type)  # validates the name
        self._graph = graph
        self._complete_type = complete_type
        self._subobjects: dict[SubobjectKey, Subobject] = {}
        # contained-in edges: child (base subobject) per container
        self._bases_of: dict[SubobjectKey, list[SubobjectKey]] = {}
        self._containers_of: dict[SubobjectKey, list[SubobjectKey]] = {}
        self._build()

    @staticmethod
    def for_type(
        graph: ClassHierarchyGraph, complete_type: str
    ) -> "SubobjectGraph":
        return SubobjectGraph(graph, complete_type)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        """Breadth-first materialisation from the whole-object subobject.

        For a subobject with representative path ``a`` (so its class is
        ``ldc(a)``), each direct-base edge ``X -> ldc(a)`` contributes the
        contained subobject ``[(X -> ldc(a)) . a]``; virtual first edges
        collapse shared virtual-base subobjects because the ≈-key of such
        a path is just ``(X, complete)``.
        """
        root = Subobject(
            key=subobject_key(Path.trivial(self._complete_type)),
            representative=Path.trivial(self._complete_type),
        )
        self._subobjects[root.key] = root
        self._bases_of[root.key] = []
        self._containers_of[root.key] = []
        queue = deque([root])
        while queue:
            container = queue.popleft()
            holder = container.representative.ldc
            for edge in self._graph.direct_bases(holder):
                child_path = Path.edge(
                    edge.base, edge.derived, virtual=edge.virtual
                ).concat(container.representative)
                child_key = subobject_key(child_path)
                child = self._subobjects.get(child_key)
                if child is None:
                    child = Subobject(key=child_key, representative=child_path)
                    self._subobjects[child_key] = child
                    self._bases_of[child_key] = []
                    self._containers_of[child_key] = []
                    queue.append(child)
                if child_key not in self._bases_of[container.key]:
                    self._bases_of[container.key].append(child_key)
                    self._containers_of[child_key].append(container.key)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def complete_type(self) -> str:
        return self._complete_type

    @property
    def hierarchy(self) -> ClassHierarchyGraph:
        return self._graph

    def __len__(self) -> int:
        return len(self._subobjects)

    def __contains__(self, key: object) -> bool:
        return key in self._subobjects

    def subobjects(self) -> tuple[Subobject, ...]:
        """All subobjects, in BFS discovery order (whole object first)."""
        return tuple(self._subobjects.values())

    def root(self) -> Subobject:
        """The whole-object subobject of the complete type."""
        return next(iter(self._subobjects.values()))

    def get(self, key: SubobjectKey) -> Subobject:
        return self._subobjects[key]

    def of_class(self, class_name: str) -> tuple[Subobject, ...]:
        """All subobjects of the given class — e.g. the two ``A``
        subobjects of the paper's Figure 1(c)."""
        return tuple(
            s for s in self._subobjects.values() if s.class_name == class_name
        )

    def base_subobjects(self, key: SubobjectKey) -> tuple[Subobject, ...]:
        """Subobjects directly contained in the given one, in base
        declaration order."""
        return tuple(self._subobjects[k] for k in self._bases_of[key])

    def containers(self, key: SubobjectKey) -> tuple[Subobject, ...]:
        return tuple(self._subobjects[k] for k in self._containers_of[key])

    def bfs_order(self) -> Iterator[Subobject]:
        """Breadth-first order from the whole object, visiting shared
        subobjects once — the traversal order of the g++ baseline."""
        root = self.root()
        seen = {root.key}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            yield current
            for child in self.base_subobjects(current.key):
                if child.key not in seen:
                    seen.add(child.key)
                    queue.append(child)

    def edges(self) -> Iterator[tuple[Subobject, Subobject]]:
        """Yield ``(base_subobject, containing_subobject)`` pairs."""
        for key, children in self._bases_of.items():
            container = self._subobjects[key]
            for child_key in children:
                yield self._subobjects[child_key], container

    def find(self, *fixed_nodes: str) -> Optional[Subobject]:
        """Locate a subobject by the classes of its fixed path —
        convenience for tests: ``g.find("A", "B", "D")``."""
        key = SubobjectKey(
            fixed_nodes=tuple(fixed_nodes), complete=self._complete_type
        )
        return self._subobjects.get(key)


def subobject_count(graph: ClassHierarchyGraph, complete_type: str) -> int:
    """Number of subobjects of a complete object — for blow-up studies."""
    return len(SubobjectGraph(graph, complete_type))


def total_subobject_count(graph: ClassHierarchyGraph) -> int:
    """Sum of subobject counts over every class taken as a complete type
    (the size of the full Rossie-Friedman subobject graph)."""
    return sum(subobject_count(graph, name) for name in graph.classes)
