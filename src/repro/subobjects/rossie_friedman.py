"""The Rossie-Friedman ``dyn``/``stat`` lookup operations (Section 7.1).

Rossie and Friedman define, per member ``m``, partial functions from
subobjects to subobjects::

    dyn(m, s)  = lookup(mdc(s), m)
    stat(m, s) = lookup(ldc(s), m) ∘ s

where the subobject composition operator is ``[a] ∘ [b] = [a . b]``.
They model the lookups performed for virtual (dynamic dispatch) and
non-virtual members respectively; the paper notes these equations show
how lookup can be *staged* so the run-time part is constant-time, with
our ``lookup`` capturing the compile-time stage.
"""

from __future__ import annotations

from typing import Optional

from repro.core.paths import Path
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.graph import Subobject
from repro.subobjects.reference import ReferenceLookup


class RossieFriedmanLookup:
    """``dyn`` and ``stat`` implemented on top of the reference lookup."""

    def __init__(self, graph: ClassHierarchyGraph) -> None:
        self._graph = graph
        self._reference = ReferenceLookup(graph)

    def dyn(self, member: str, subobject: Subobject) -> Optional[Subobject]:
        """Dynamic (virtual-member) lookup: resolve ``member`` in the
        *complete* object containing ``subobject``; ``None`` models the
        partial function being undefined (ambiguity or absence)."""
        result = self._reference.lookup(subobject.complete_type, member)
        if not result.is_unique or result.witness is None:
            return None
        return self._subobject_of(result.witness)

    def stat(self, member: str, subobject: Subobject) -> Optional[Subobject]:
        """Static (non-virtual-member) lookup: resolve ``member`` in the
        subobject's own class, then re-embed the answer into the complete
        object by composing with the subobject's path."""
        result = self._reference.lookup(subobject.class_name, member)
        if not result.is_unique or result.witness is None:
            return None
        composed = result.witness.concat(subobject.representative)
        return self._subobject_of(composed)

    def _subobject_of(self, path: Path) -> Subobject:
        graph = self._reference.poset(path.mdc).subobject_graph
        found = graph.find(*path.fixed().nodes)
        if found is None:  # pragma: no cover - witnesses are always real paths
            raise AssertionError(f"witness path {path} names no subobject")
        return found
