"""The reference lookup: the paper's Definitions 7-9 executed literally.

This is the *executable specification* (essentially the Rossie-Friedman
definition): materialise the subobjects of the complete type, collect
``Defns(C, m)``, and pick the most-dominant element of that set under the
subobject poset.  Potentially exponential; it exists as the oracle
against which the efficient algorithm is tested and benchmarked.
"""

from __future__ import annotations

from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.graph import Subobject, SubobjectGraph
from repro.subobjects.poset import SubobjectPoset


def defns(
    subobject_graph: SubobjectGraph, member: str
) -> tuple[Subobject, ...]:
    """Definition 7: the subobjects of the complete object whose class
    directly declares ``member``."""
    hierarchy = subobject_graph.hierarchy
    return tuple(
        subobject
        for subobject in subobject_graph.subobjects()
        if hierarchy.declares(subobject.class_name, member)
    )


class ReferenceLookup:
    """Lookup by direct evaluation of the definitions, memoising the
    subobject graph and poset per complete type."""

    def __init__(self, graph: ClassHierarchyGraph) -> None:
        graph.validate()
        self._graph = graph
        self._posets: dict[str, SubobjectPoset] = {}

    def poset(self, complete_type: str) -> SubobjectPoset:
        if complete_type not in self._posets:
            self._posets[complete_type] = SubobjectPoset(
                SubobjectGraph(self._graph, complete_type)
            )
        return self._posets[complete_type]

    def defns(self, class_name: str, member: str) -> tuple[Subobject, ...]:
        return defns(self.poset(class_name).subobject_graph, member)

    def lookup(self, class_name: str, member: str) -> LookupResult:
        """Definition 9: ``most-dominant(Defns(C, m))`` or ⊥."""
        poset = self.poset(class_name)
        candidates = self.defns(class_name, member)
        if not candidates:
            return not_found_result(class_name, member)
        winner = poset.most_dominant(candidates)
        if winner is None:
            return ambiguous_result(
                class_name,
                member,
                candidates=tuple(
                    sorted({c.class_name for c in poset.maximal(candidates)})
                ),
            )
        return unique_result(
            class_name,
            member,
            declaring_class=winner.class_name,
            least_virtual=winner.representative.least_virtual(),
            witness=winner.representative,
        )

    def lookup_static(self, class_name: str, member: str) -> LookupResult:
        """Definition 17: the static-member rule.

        The lookup is defined when the maximal set is a singleton, or
        when every maximal subobject shares the same ``ldc`` and the
        member behaves as static there (static proper, nested type, or
        enumerator); a representative element is returned.
        """
        poset = self.poset(class_name)
        candidates = self.defns(class_name, member)
        if not candidates:
            return not_found_result(class_name, member)
        maximal = poset.maximal(candidates)
        defined = len(maximal) == 1 or (
            len({s.class_name for s in maximal}) == 1
            and self._graph.member(
                maximal[0].class_name, member
            ).behaves_as_static
        )
        if not defined:
            return ambiguous_result(
                class_name,
                member,
                candidates=tuple(sorted({s.class_name for s in maximal})),
            )
        winner = maximal[0]
        return unique_result(
            class_name,
            member,
            declaring_class=winner.class_name,
            least_virtual=winner.representative.least_virtual(),
            witness=winner.representative,
        )


def reference_lookup(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> LookupResult:
    """One-shot convenience wrapper around :class:`ReferenceLookup`."""
    return ReferenceLookup(graph).lookup(class_name, member)
