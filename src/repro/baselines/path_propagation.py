"""The naive two-phase algorithm of Section 4 — propagation of *concrete*
paths.

Phase 1 ("the propagation phase") computes ``DefnsPath(C, m)`` for every
class ``C`` by seeding every generated definition ``A::m`` and pushing
definitions along all outgoing edges of their ``mdc`` until a fixpoint.
Phase 2 scans each reaching-definition set for a most-dominant element.

The paper presents this as the "simple, but inefficient" starting point:
the number of propagated paths can be exponential in the CHG.  Two
refinements are offered as options so benchmarks can measure their
effect:

* ``kill_on_generation`` — a generated definition ``X::m`` kills every
  other definition reaching ``X`` (the reaching-definitions-style kill).
* ``kill_dominated`` — the stronger interleaved kill justified by
  Corollary 1: any definition dominated by another reaching definition is
  dropped before propagation (this is the kill that has no analogue in
  classical reaching definitions).
"""

from __future__ import annotations

from typing import Callable

from repro.core.dominance import dominates_paths, most_dominant
from repro.core.paths import Path
from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.compiled import HierarchyLike, hierarchy_of
from repro.hierarchy.topo import topological_order
from repro.subobjects.graph import SubobjectGraph
from repro.subobjects.poset import SubobjectPoset
from repro.core.equivalence import subobject_key


class NaivePathLookup:
    """Member lookup by explicit path propagation (Section 4).

    Dominance between concrete paths is decided on the materialised
    subobject poset of the queried class (reachability), which matches
    Definition 5 — see :func:`repro.core.dominance.dominates_paths` for
    the literal form and the tests for their agreement.
    """

    def __init__(
        self,
        graph: HierarchyLike,
        *,
        kill_on_generation: bool = True,
        kill_dominated: bool = False,
    ) -> None:
        graph = hierarchy_of(graph)
        graph.validate()
        self._graph = graph
        self._kill_on_generation = kill_on_generation
        self._kill_dominated = kill_dominated
        self._posets: dict[str, SubobjectPoset] = {}
        self._reaching: dict[str, dict[str, list[Path]]] = {}
        self._outgoing: dict[str, dict[str, list[Path]]] = {}
        self.paths_propagated = 0

    # ------------------------------------------------------------------

    def reaching_definitions(self, member: str) -> dict[str, list[Path]]:
        """Phase 1 for one member: the definitions of ``member`` reaching
        each class (after any configured killing)."""
        cache = self._reaching.get(member)
        if cache is not None:
            return cache

        graph = self._graph
        reaching: dict[str, list[Path]] = {name: [] for name in graph.classes}
        outgoing_map: dict[str, list[Path]] = {}
        for class_name in topological_order(graph):
            incoming = reaching[class_name]
            if graph.declares(class_name, member):
                generated = Path.trivial(class_name)
                if self._kill_on_generation:
                    outgoing = [generated]
                else:
                    outgoing = incoming + [generated]
                reaching[class_name] = incoming + [generated]
            elif self._kill_dominated and len(incoming) > 1:
                outgoing = self._drop_dominated(class_name, incoming)
            else:
                outgoing = incoming
            outgoing_map[class_name] = outgoing
            for edge in graph.direct_derived(class_name):
                for path in outgoing:
                    self.paths_propagated += 1
                    reaching[edge.derived].append(
                        path.extend(edge.derived, virtual=edge.virtual)
                    )
        self._reaching[member] = reaching
        self._outgoing[member] = outgoing_map
        return reaching

    def outgoing_definitions(self, member: str) -> dict[str, list[Path]]:
        """The definitions each node propagates along its outgoing edges
        — the reaching set minus whatever the kill policy dropped.  Used
        by the Figure 4/5 trace renderer."""
        self.reaching_definitions(member)
        return self._outgoing[member]

    def lookup(self, class_name: str, member: str) -> LookupResult:
        """Phase 2: find the most-dominant reaching definition."""
        self._graph.direct_bases(class_name)
        reaching = self.reaching_definitions(member)[class_name]
        if not reaching:
            return not_found_result(class_name, member)
        winner = most_dominant(
            reaching, lambda a, b: self._dominates(class_name, a, b)
        )
        if winner is None:
            return ambiguous_result(
                class_name,
                member,
                candidates=tuple(sorted({p.ldc for p in reaching})),
            )
        return unique_result(
            class_name,
            member,
            declaring_class=winner.ldc,
            least_virtual=winner.least_virtual(),
            witness=winner,
        )

    # ------------------------------------------------------------------

    def _poset(self, complete_type: str) -> SubobjectPoset:
        if complete_type not in self._posets:
            self._posets[complete_type] = SubobjectPoset(
                SubobjectGraph(self._graph, complete_type)
            )
        return self._posets[complete_type]

    def _dominates(self, complete_type: str, a: Path, b: Path) -> bool:
        poset = self._poset(complete_type)
        return poset.dominates(subobject_key(a), subobject_key(b))

    def _drop_dominated(
        self, class_name: str, definitions: list[Path]
    ) -> list[Path]:
        """Corollary 1: killing a dominated definition cannot change any
        downstream most-dominant result."""
        survivors = []
        for i, path in enumerate(definitions):
            strictly_dominated = any(
                j != i
                and self._dominates(class_name, other, path)
                and not self._dominates(class_name, path, other)
                for j, other in enumerate(definitions)
            )
            if not strictly_dominated:
                survivors.append(path)
        return survivors


def naive_lookup(
    graph: HierarchyLike,
    class_name: str,
    member: str,
    *,
    dominance: Callable[..., bool] = dominates_paths,
) -> LookupResult:
    """A fully definitional one-shot lookup: enumerate ``DefnsPath(C, m)``
    directly and select a most-dominant element with the *literal*
    Definition 5 dominance (path-suffix search).  The slowest correct
    implementation in the library; used as a cross-check in tests.
    """
    from repro.core.enumeration import defns_paths

    graph = hierarchy_of(graph)
    candidates = defns_paths(graph, class_name, member)
    if not candidates:
        return not_found_result(class_name, member)
    winner = most_dominant(candidates, lambda a, b: dominance(graph, a, b))
    if winner is None:
        return ambiguous_result(
            class_name,
            member,
            candidates=tuple(sorted({p.ldc for p in candidates})),
        )
    return unique_result(
        class_name,
        member,
        declaring_class=winner.ldc,
        least_virtual=winner.least_virtual(),
        witness=winner,
    )
