"""Self-style member lookup (paper, Section 7.2).

    "A member name m is unambiguous in a given object iff exactly one
    definition of m is visible in that object.  (A member m in a base
    object is said to be visible in a derived object iff there exists an
    inheritance path between the two objects that does not contain any
    other object with a member called m.)"

Self has no dominance rule and no virtual/non-virtual distinction, so
its semantics on a C++ hierarchy genuinely *differs* from C++ lookup:
on the paper's Figure 9, C++ resolves ``lookup(E, m)`` to ``C::m`` via
dominance through the shared virtual bases, while the Self rule sees the
three visible definitions ``A::m``, ``B::m``, ``C::m`` and reports
ambiguity.  The tests exhibit both the agreements and this divergence.

By default lookups resolve through the interned ``self`` semantics
(:mod:`repro.core.semantics`) on the batched driver; ``compiled=False``
keeps the original string-keyed visibility fold as an independent
conformance reference for the tests.
"""

from __future__ import annotations

from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.topo import topological_order


class SelfStyleLookup:
    """Visibility-based lookup: a declaration is visible unless shadowed
    on *every* path by an intervening declaration of the same name.

    ``compiled=True`` (the default) serves answers from a
    :class:`~repro.core.lookup.MemberLookupTable` built with
    ``semantics="self"``; ``compiled=False`` runs the original naive
    fold this class started as, kept as the conformance reference.
    """

    def __init__(
        self, graph: ClassHierarchyGraph, *, compiled: bool = True
    ) -> None:
        graph.validate()
        self._graph = graph
        self._table = None
        # visible[C][m]: declaring classes of m visible in C.
        self._visible: dict[str, dict[str, frozenset[str]]] = {}
        if compiled:
            from repro.core.lookup import MemberLookupTable

            self._table = MemberLookupTable(
                graph, mode="batched", semantics="self"
            )
        else:
            self._build()

    def _build(self) -> None:
        graph = self._graph
        for class_name in topological_order(graph):
            merged: dict[str, set[str]] = {}
            for edge in graph.direct_bases(class_name):
                for member, declarers in self._visible[edge.base].items():
                    merged.setdefault(member, set()).update(declarers)
            for member in graph.declared_members(class_name):
                # A local declaration shadows everything inherited.
                merged[member] = {class_name}
            self._visible[class_name] = {
                member: frozenset(declarers)
                for member, declarers in merged.items()
            }

    def visible_definitions(
        self, class_name: str, member: str
    ) -> frozenset[str]:
        """The declaring classes of ``member`` visible in ``class_name``
        under the Self rule."""
        self._graph.direct_bases(class_name)
        if self._table is not None:
            result = self._table.lookup(class_name, member)
            if result.is_unique:
                return frozenset((result.declaring_class,))
            if result.is_ambiguous:
                return frozenset(result.candidates)
            return frozenset()
        return self._visible[class_name].get(member, frozenset())

    def lookup(self, class_name: str, member: str) -> LookupResult:
        if self._table is not None:
            self._graph.direct_bases(class_name)
            return self._table.lookup(class_name, member)
        visible = self.visible_definitions(class_name, member)
        if not visible:
            return not_found_result(class_name, member)
        if len(visible) > 1:
            return ambiguous_result(
                class_name, member, candidates=tuple(sorted(visible))
            )
        (declarer,) = visible
        return unique_result(
            class_name,
            member,
            declaring_class=declarer,
            least_virtual=None,
            witness=None,
        )
