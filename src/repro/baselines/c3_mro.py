"""C3 linearisation lookup — the Python/Dylan answer to the same problem.

Languages without C++'s subobject model solve member lookup by
*linearising* the hierarchy: C3 produces a single method resolution
order per class and lookup scans it for the first declaration.  Included
as a modern point of comparison with the paper's dominance semantics:

* C3 never reports the paper's kind of ambiguity — a C++-ambiguous
  lookup (Figure 1) silently resolves to whichever class linearises
  first;
* instead it can *reject whole hierarchies* whose base orders cannot be
  linearised monotonically (Python's "MRO conflict" TypeError), which
  C++ accepts happily.

The tests exhibit both divergences against the paper's figures.

By default the lookup resolves through the interned engine
(:func:`repro.core.semantics.c3_linearization_ids`, the same code the
``c3`` :class:`~repro.core.semantics.Semantics` sweeps with);
``compiled=False`` keeps the original string-keyed merge as an
independent conformance reference for the tests.
"""

from __future__ import annotations

from repro.core.results import (
    LookupResult,
    not_found_result,
    unique_result,
)
from repro.core.semantics import SemanticsRejection, c3_linearization_ids
from repro.errors import ReproError
from repro.hierarchy.graph import ClassHierarchyGraph


class InconsistentMROError(ReproError):
    """The class's bases cannot be linearised (C3 merge failure)."""


def c3_linearization(
    graph: ClassHierarchyGraph, class_name: str
) -> tuple[str, ...]:
    """The C3 MRO of a class: ``L(C) = C + merge(L(B1)..L(Bn), [B1..Bn])``.

    Virtual and non-virtual edges are treated alike (linearising
    languages have no such distinction).
    """
    graph.direct_bases(class_name)
    cache: dict[str, tuple[str, ...]] = {}

    def linearize(name: str) -> tuple[str, ...]:
        if name in cache:
            return cache[name]
        bases = graph.direct_base_names(name)
        sequences = [list(linearize(base)) for base in bases]
        sequences.append(list(bases))
        cache[name] = (name,) + tuple(_merge(name, sequences))
        return cache[name]

    return linearize(class_name)


def _merge(class_name: str, sequences: list[list[str]]) -> list[str]:
    result: list[str] = []
    sequences = [seq for seq in sequences if seq]
    while sequences:
        for sequence in sequences:
            head = sequence[0]
            in_a_tail = any(head in other[1:] for other in sequences)
            if not in_a_tail:
                break
        else:
            raise InconsistentMROError(
                f"cannot create a consistent MRO for {class_name!r}: "
                f"heads {[seq[0] for seq in sequences]!r} all appear in tails"
            )
        result.append(head)
        sequences = [
            [entry for entry in sequence if entry != head]
            for sequence in sequences
        ]
        sequences = [seq for seq in sequences if seq]
    return result


class C3Lookup:
    """Member lookup by MRO scan, Python-style.

    With ``compiled=True`` (the default) each MRO is resolved through
    the interned-id linearizer shared with the ``c3`` semantics, and a
    merge failure surfaces as the same :class:`InconsistentMROError`
    the naive path raises.  ``compiled=False`` runs the original
    string-keyed merge, kept as the conformance reference.
    """

    def __init__(
        self, graph: ClassHierarchyGraph, *, compiled: bool = True
    ) -> None:
        graph.validate()
        self._graph = graph
        self._compiled = compiled
        self._mros: dict[str, tuple[str, ...]] = {}
        # Shared across queries so ancestor linearisations intern once.
        self._id_memo: dict[int, tuple] = {}

    def mro(self, class_name: str) -> tuple[str, ...]:
        if class_name not in self._mros:
            if self._compiled:
                self._mros[class_name] = self._compiled_mro(class_name)
            else:
                self._mros[class_name] = c3_linearization(
                    self._graph, class_name
                )
        return self._mros[class_name]

    def _compiled_mro(self, class_name: str) -> tuple[str, ...]:
        ch = self._graph.compile()
        try:
            ids = c3_linearization_ids(
                ch, ch.class_id(class_name), self._id_memo
            )
        except SemanticsRejection as exc:
            raise InconsistentMROError(
                f"cannot create a consistent MRO for {exc.class_name!r}: "
                + exc.reason.split(": ", 1)[1]
            ) from exc
        return tuple(ch.class_names[cid] for cid in ids)

    def lookup(self, class_name: str, member: str) -> LookupResult:
        """The first declaration along the MRO wins; never ambiguous
        (but :class:`InconsistentMROError` may propagate from the
        linearisation itself)."""
        for candidate in self.mro(class_name):
            if self._graph.declares(candidate, member):
                return unique_result(
                    class_name,
                    member,
                    declaring_class=candidate,
                    least_virtual=None,
                    witness=None,
                )
        return not_found_result(class_name, member)
