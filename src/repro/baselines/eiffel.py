"""Eiffel-style feature lookup with renaming (paper, Section 7.2).

    "Attali et al. present a semantics and algorithm for lookup in
    Eiffel, another language with multiple inheritance.  Member lookup
    in Eiffel is complicated by the presence of a feature called
    renaming, that allows a derived class to rename an inherited member.
    The Attali et al. algorithm, however, assumes that the input program
    is statically well typed — in particular, they assume that none of
    the lookups in the source program is ambiguous."

This module implements that model as a point of comparison: classes own
*features*; inheritance clauses may carry ``rename old -> new`` maps;
flattening propagates features under their (possibly renamed) final
names; and — exactly as the paper highlights — the algorithm *assumes*
well-typedness: an actual name clash between distinct origin features
raises :class:`AmbiguousLookupDetected` instead of being resolved by any
dominance rule.  Repeated inheritance of the *same* origin feature under
one name is shared (Eiffel's sharing rule), mirroring what C++ achieves
only with virtual bases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import (
    AmbiguousLookupDetected,
    DuplicateClassError,
    UnknownClassError,
)


@dataclass(frozen=True)
class Feature:
    """An origin-stamped feature: (class that introduced it, original
    name).  Renaming changes the name a feature is *known by*, never its
    origin."""

    origin_class: str
    origin_name: str

    def __str__(self) -> str:
        return f"{self.origin_class}.{self.origin_name}"


@dataclass
class _EiffelClass:
    name: str
    declared: list[str]
    parents: list[tuple[str, dict[str, str]]] = field(default_factory=list)


class EiffelHierarchy:
    """Classes with rename-carrying inheritance clauses and flattened
    feature tables."""

    def __init__(self) -> None:
        self._classes: dict[str, _EiffelClass] = {}
        self._flat: dict[str, dict[str, Feature]] = {}

    def add_class(
        self,
        name: str,
        *,
        features: tuple[str, ...] = (),
        parents: tuple[tuple[str, Mapping[str, str]], ...] = (),
    ) -> None:
        """Declare a class; ``parents`` pairs a parent name with its
        rename map (``{old_name: new_name}``).  Parents must already be
        declared, and the class is flattened immediately so clashes are
        reported at declaration (Eiffel is statically checked)."""
        if name in self._classes:
            raise DuplicateClassError(name)
        for parent_name, _renames in parents:
            if parent_name not in self._classes:
                raise UnknownClassError(parent_name)
        record = _EiffelClass(
            name=name,
            declared=list(features),
            parents=[(p, dict(r)) for p, r in parents],
        )
        # Flatten BEFORE registering: a clash must leave the hierarchy
        # unchanged so the caller can retry with a rename clause.
        flattened = self._flatten(record)
        self._classes[name] = record
        self._flat[name] = flattened

    def _flatten(self, record: _EiffelClass) -> dict[str, Feature]:
        table: dict[str, Feature] = {}
        for parent_name, renames in record.parents:
            for known_as, feature in self._flat[parent_name].items():
                final_name = renames.get(known_as, known_as)
                existing = table.get(final_name)
                if existing is not None and existing != feature:
                    raise AmbiguousLookupDetected(
                        f"class {record.name!r}: name {final_name!r} would "
                        f"denote both {existing} and {feature}; Eiffel "
                        "requires a rename clause here"
                    )
                table[final_name] = feature
        for name in record.declared:
            # A local declaration is a redefinition if the name is
            # inherited, otherwise an introduction; either way the class
            # becomes the origin.
            table[name] = Feature(origin_class=record.name, origin_name=name)
        return table

    def features(self, class_name: str) -> dict[str, Feature]:
        if class_name not in self._flat:
            raise UnknownClassError(class_name)
        return dict(self._flat[class_name])

    def lookup(self, class_name: str, name: str) -> Optional[Feature]:
        """Resolve ``name`` in ``class_name``'s flattened table; ``None``
        if absent.  Never ambiguous — clashes were rejected at
        declaration time, the well-typedness assumption the paper points
        out."""
        return self.features(class_name).get(name)
