"""The Eiffel-style "assume unambiguous" lookup (paper, Section 7.2).

    "If one assumes that a particular lookup is unambiguous, then the
    lookup can be done very simply as follows.  Associate each class X
    with a topological number top-sort(X) [...].  Then, from the set of
    definitions that reach a class X, one simply selects the one for
    which top-sort(ldc) is maximum as the most dominant definition."

This baseline is only *valid* on programs without ambiguous lookups (the
assumption Attali et al. make for Eiffel).  By default it trusts the
assumption blindly — and silently returns a wrong answer on ambiguous
lookups, which the tests demonstrate.  With ``verify=True`` it
cross-checks against the real algorithm and raises
:class:`AmbiguousLookupDetected` when the assumption is violated.

By default lookups resolve through the interned ``topo-number``
semantics (:mod:`repro.core.semantics`) on the batched driver;
``compiled=False`` keeps the original string-keyed reaching-definitions
fold as an independent conformance reference for the tests.
"""

from __future__ import annotations

from repro.core.lookup import MemberLookupTable
from repro.core.results import (
    LookupResult,
    not_found_result,
    unique_result,
)
from repro.errors import AmbiguousLookupDetected
from repro.core.paths import OMEGA
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.topo import topological_numbers, topological_order


class TopoNumberLookup:
    """Maximum-topological-number lookup over reaching definition classes.

    The set of classes whose definitions of ``m`` reach ``C`` is exactly
    the declarers of ``m`` among ``C`` and its base classes; of these the
    one with the greatest topological number is selected.
    """

    def __init__(
        self,
        graph: ClassHierarchyGraph,
        *,
        verify: bool = False,
        compiled: bool = True,
    ) -> None:
        graph.validate()
        self._graph = graph
        self._verifier = MemberLookupTable(graph) if verify else None
        self._table = None
        self._numbers: dict[str, int] = {}
        # declarers[C][m]: classes declaring m among C's reflexive bases.
        self._declarers: dict[str, dict[str, list[str]]] = {}
        if compiled:
            self._table = MemberLookupTable(
                graph, mode="batched", semantics="topo-number"
            )
        else:
            self._numbers = topological_numbers(graph)
            self._build()

    def _build(self) -> None:
        graph = self._graph
        for class_name in topological_order(graph):
            merged: dict[str, list[str]] = {}
            for member in graph.declared_members(class_name):
                merged[member] = [class_name]
            for edge in graph.direct_bases(class_name):
                for member, declarers in self._declarers[edge.base].items():
                    bucket = merged.setdefault(member, [])
                    for declarer in declarers:
                        if declarer not in bucket:
                            bucket.append(declarer)
            self._declarers[class_name] = merged

    def _check_assumption(self, class_name: str, member: str) -> None:
        if self._verifier is None:
            return
        checked = self._verifier.lookup(class_name, member)
        if checked.is_ambiguous:
            raise AmbiguousLookupDetected(
                f"lookup({class_name}, {member}) is ambiguous; the "
                "topological-number shortcut is not applicable"
            )

    def lookup(self, class_name: str, member: str) -> LookupResult:
        self._graph.direct_bases(class_name)
        if self._table is not None:
            result = self._table.lookup(class_name, member)
            if not result.is_unique:
                return result  # not-found: the shortcut never reports ⊥
            self._check_assumption(class_name, member)
            return result
        declarers = self._declarers[class_name].get(member)
        if not declarers:
            return not_found_result(class_name, member)
        self._check_assumption(class_name, member)
        winner = max(declarers, key=self._numbers.__getitem__)
        return unique_result(
            class_name,
            member,
            declaring_class=winner,
            # The shortcut does not track paths; the abstraction component
            # is only meaningful for the trivial self-definition.
            least_virtual=OMEGA if winner == class_name else None,
            witness=None,
        )
