"""Baseline lookup algorithms the paper compares against (Section 7)."""

from repro.baselines.c3_mro import C3Lookup, InconsistentMROError, c3_linearization
from repro.baselines.eiffel import EiffelHierarchy, Feature
from repro.baselines.gxx import GxxStats, gxx_lookup, gxx_lookup_fixed
from repro.baselines.path_propagation import NaivePathLookup, naive_lookup
from repro.baselines.self_lookup import SelfStyleLookup
from repro.baselines.topo_number import TopoNumberLookup

__all__ = [
    "C3Lookup",
    "EiffelHierarchy",
    "Feature",
    "GxxStats",
    "InconsistentMROError",
    "NaivePathLookup",
    "SelfStyleLookup",
    "TopoNumberLookup",
    "c3_linearization",
    "gxx_lookup",
    "gxx_lookup_fixed",
    "naive_lookup",
]
