"""The g++ 2.7.2.1 member lookup, as described in Section 7.1 — bug
included.

    "The lookup algorithm in g++ is based on a breadth-first traversal of
    the subobject graph. [...] If neither definition dominates the other
    one, the algorithm reports ambiguity and quits."

That early bail-out is unsound: a breadth-first scan can meet two
incomparable definitions ``d1, d2`` before a later definition ``d3`` that
dominates both.  The paper's Figure 9 exhibits exactly this, and
:func:`gxx_lookup` reproduces the wrong answer there (while
:class:`~repro.core.lookup.MemberLookupTable` resolves it correctly).

A repaired variant, :func:`gxx_lookup_fixed`, completes the scan and
keeps the full set of incomparable candidates — still exponential-time in
the worst case, but correct; it is used in benchmarks as the "direct
implementation of the Rossie-Friedman definition".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import (
    LookupResult,
    ambiguous_result,
    not_found_result,
    unique_result,
)
from repro.hierarchy.compiled import HierarchyLike, hierarchy_of
from repro.subobjects.graph import Subobject, SubobjectGraph
from repro.subobjects.poset import SubobjectPoset


@dataclass
class GxxStats:
    subobjects_visited: int = 0
    dominance_checks: int = 0


def gxx_lookup(
    graph: HierarchyLike,
    class_name: str,
    member: str,
    *,
    stats: GxxStats | None = None,
) -> LookupResult:
    """Faithful reimplementation of the g++ 2.7.2.1 strategy.

    Returns what *that compiler* would answer — which is wrong on
    hierarchies like the paper's Figure 9 (reports ambiguity for a
    well-defined lookup).
    """
    graph = hierarchy_of(graph)
    subobject_graph = SubobjectGraph(graph, class_name)
    poset = SubobjectPoset(subobject_graph)
    stats = stats if stats is not None else GxxStats()

    best: Subobject | None = None
    for subobject in subobject_graph.bfs_order():
        stats.subobjects_visited += 1
        if not graph.declares(subobject.class_name, member):
            continue
        if best is None:
            best = subobject
            continue
        stats.dominance_checks += 2
        if poset.dominates(subobject.key, best.key):
            best = subobject
        elif poset.dominates(best.key, subobject.key):
            continue
        else:
            # The unsound early exit: report ambiguity immediately.
            return ambiguous_result(
                class_name,
                member,
                candidates=tuple(
                    sorted({best.class_name, subobject.class_name})
                ),
            )
    if best is None:
        return not_found_result(class_name, member)
    return unique_result(
        class_name,
        member,
        declaring_class=best.class_name,
        least_virtual=best.representative.least_virtual(),
        witness=best.representative,
    )


def gxx_lookup_fixed(
    graph: HierarchyLike,
    class_name: str,
    member: str,
    *,
    stats: GxxStats | None = None,
) -> LookupResult:
    """The repaired breadth-first lookup: maintain the set of pairwise
    incomparable candidates over the whole traversal and declare
    ambiguity only at the end.  Correct, but still walks the (possibly
    exponential) subobject graph."""
    graph = hierarchy_of(graph)
    subobject_graph = SubobjectGraph(graph, class_name)
    poset = SubobjectPoset(subobject_graph)
    stats = stats if stats is not None else GxxStats()

    frontier: list[Subobject] = []
    for subobject in subobject_graph.bfs_order():
        stats.subobjects_visited += 1
        if not graph.declares(subobject.class_name, member):
            continue
        dominated = False
        survivors = []
        for candidate in frontier:
            stats.dominance_checks += 2
            if poset.dominates(candidate.key, subobject.key):
                dominated = True
                survivors.append(candidate)
            elif not poset.dominates(subobject.key, candidate.key):
                survivors.append(candidate)
        if not dominated:
            survivors.append(subobject)
        frontier = survivors
    if not frontier:
        return not_found_result(class_name, member)
    if len(frontier) > 1:
        return ambiguous_result(
            class_name,
            member,
            candidates=tuple(sorted({s.class_name for s in frontier})),
        )
    winner = frontier[0]
    return unique_result(
        class_name,
        member,
        declaring_class=winner.class_name,
        least_virtual=winner.representative.least_virtual(),
        witness=winner.representative,
    )
