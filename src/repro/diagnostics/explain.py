"""Human-readable explanations of lookup outcomes.

Produces compiler-style messages — including the candidate list a
compiler prints for ambiguous accesses — plus a step-by-step account of
the dominance reasoning, built from the reference subobject semantics
(exact maximal sets) and the efficient table (the resolution itself).
"""

from __future__ import annotations

from repro.core.lookup import build_lookup_table
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.reference import ReferenceLookup, defns


def explain_lookup(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> str:
    """A multi-line explanation of ``lookup(class_name, member)``."""
    table = build_lookup_table(graph)
    reference = ReferenceLookup(graph)
    result = table.lookup(class_name, member)
    poset = reference.poset(class_name)
    candidates = defns(poset.subobject_graph, member)

    lines = [f"lookup({class_name}, {member}):"]
    if not candidates:
        lines.append(
            f"  no subobject of {class_name} declares {member!r}"
            " -> not found"
        )
        return "\n".join(lines)

    lines.append(
        f"  Defns({class_name}, {member}) has {len(candidates)} "
        f"subobject(s):"
    )
    for subobject in candidates:
        lines.append(f"    {subobject.key}  declares {subobject.class_name}::{member}")

    if result.is_unique:
        winner = result.subobject
        lines.append(
            f"  {winner} dominates every other definition -> resolves to "
            f"{result.qualified_name()}"
        )
        lines.append(f"  witness path: {result.witness}")
    else:
        maximal = poset.maximal(list(candidates))
        lines.append("  no definition dominates all others; maximal set:")
        for subobject in maximal:
            lines.append(f"    {subobject.key}  ({subobject.class_name}::{member})")
        lines.append("  -> the lookup is ambiguous")
    return "\n".join(lines)


def ambiguity_message(
    graph: ClassHierarchyGraph, class_name: str, member: str
) -> str:
    """A single g++-style error message for an ambiguous access, with the
    exact candidate set (computed from the reference maximal set)."""
    reference = ReferenceLookup(graph)
    result = reference.lookup(class_name, member)
    if not result.is_ambiguous:
        raise ValueError(
            f"lookup({class_name}, {member}) is {result.status}, "
            "not ambiguous"
        )
    lines = [
        f"error: request for member '{member}' is ambiguous in "
        f"'{class_name}'"
    ]
    lines.extend(
        f"note: candidates are: {candidate}::{member}"
        for candidate in result.candidates
    )
    return "\n".join(lines)
