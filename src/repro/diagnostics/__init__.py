"""Explanations and graph exports."""

from repro.diagnostics.dot import chg_to_dot, subobject_graph_to_dot
from repro.diagnostics.explain import ambiguity_message, explain_lookup
from repro.diagnostics.trace import (
    render_abstract_trace,
    render_concrete_trace,
    trace_abstract,
    trace_concrete,
)

__all__ = [
    "ambiguity_message",
    "chg_to_dot",
    "explain_lookup",
    "render_abstract_trace",
    "render_concrete_trace",
    "subobject_graph_to_dot",
    "trace_abstract",
    "trace_concrete",
]
