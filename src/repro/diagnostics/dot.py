"""Graphviz DOT export of hierarchies and subobject graphs.

Renders the paper's two graph kinds the way its figures draw them: solid
edges for non-virtual inheritance, dashed edges for virtual inheritance
(Figures 1(b)/2(b)), and the duplicated-node subobject graphs (Figures
1(c)/2(c)).
"""

from __future__ import annotations

from repro.hierarchy.graph import ClassHierarchyGraph
from repro.subobjects.graph import SubobjectGraph


def _quote(text: str) -> str:
    # Escape quotes only: labels legitimately contain DOT escapes such
    # as the literal two-character sequence \n for line breaks.
    escaped = text.replace('"', '\\"')
    return f'"{escaped}"'


def chg_to_dot(
    graph: ClassHierarchyGraph, *, name: str = "hierarchy"
) -> str:
    """The class hierarchy graph in DOT, members listed in each node."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for class_name in graph.classes:
        members = ", ".join(
            str(m) for m in graph.declared_members(class_name).values()
        )
        label = class_name if not members else f"{class_name}\\n{members}"
        lines.append(f"  {_quote(class_name)} [label={_quote(label)}];")
    for edge in graph.edges:
        style = ' [style=dashed, label="virtual"]' if edge.virtual else ""
        lines.append(
            f"  {_quote(edge.base)} -> {_quote(edge.derived)}{style};"
        )
    lines.append("}")
    return "\n".join(lines)


def subobject_graph_to_dot(
    graph: SubobjectGraph, *, name: str = "subobjects"
) -> str:
    """The subobject graph of one complete type in DOT form."""
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=ellipse];"]
    for subobject in graph.subobjects():
        shape = ' style="dashed"' if subobject.is_virtual else ""
        lines.append(
            f"  {_quote(str(subobject.key))} "
            f"[label={_quote(str(subobject.key))}{shape}];"
        )
    for base, container in graph.edges():
        lines.append(
            f"  {_quote(str(base.key))} -> {_quote(str(container.key))};"
        )
    lines.append("}")
    return "\n".join(lines)
