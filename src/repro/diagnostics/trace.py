"""Propagation traces — the paper's Figures 4-7, regenerated.

Figures 4 and 5 annotate each node of the Figure 3 hierarchy with the
*concrete definitions* of one member reaching it, crossing out the
killed ones and printing the most-dominant one in bold.  Figures 6 and 7
show the same propagation at the *abstraction* level: the Red/Blue value
arriving at and produced by each node.

:func:`trace_concrete` and :func:`trace_abstract` compute these
per-node annotations; their renderers produce a deterministic text form
(``*`` marks the most-dominant definition, ``[killed]`` the crossed-out
ones) that the golden tests pin against the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.path_propagation import NaivePathLookup
from repro.core.lookup import (
    BlueEntry,
    MemberLookupTable,
    RedEntry,
    build_lookup_table,
)
from repro.core.paths import Path
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.topo import topological_order


@dataclass(frozen=True)
class ConcreteNodeTrace:
    """One node of a Figure 4/5-style drawing."""

    class_name: str
    reaching: tuple[Path, ...]
    killed: tuple[Path, ...]  # reaching definitions not propagated out
    most_dominant: Path | None

    def render(self) -> str:
        parts = []
        for path in self.reaching:
            text = f"{path}::"
            if self.most_dominant is not None and path == self.most_dominant:
                parts.append(f"*{text}")
            elif path in self.killed:
                parts.append(f"{text}[killed]")
            else:
                parts.append(text)
        return f"{self.class_name}: " + "  ".join(parts) if parts else (
            f"{self.class_name}: (none)"
        )


def trace_concrete(
    graph: ClassHierarchyGraph, member: str
) -> dict[str, ConcreteNodeTrace]:
    """Per-node reaching definitions with kill and dominance annotations
    (Figures 4-5).  Exactly the paper's optimised propagation: a
    definition is "killed at node X" when it reaches X but is not
    propagated out of X (hidden by a generated definition or dominated
    by another reaching definition)."""
    engine = NaivePathLookup(
        graph, kill_on_generation=True, kill_dominated=True
    )
    reaching_map = engine.reaching_definitions(member)
    outgoing_map = engine.outgoing_definitions(member)

    traces = {}
    for class_name in topological_order(graph):
        reaching = tuple(reaching_map[class_name])
        surviving = {str(p) for p in outgoing_map[class_name]}
        killed = tuple(p for p in reaching if str(p) not in surviving)
        result = engine.lookup(class_name, member)
        winner = result.witness if result.is_unique else None
        traces[class_name] = ConcreteNodeTrace(
            class_name=class_name,
            reaching=reaching,
            killed=killed,
            most_dominant=winner,
        )
    return traces


def render_concrete_trace(
    graph: ClassHierarchyGraph, member: str
) -> str:
    """The whole Figure 4/5-style annotation as text, in topological
    order."""
    traces = trace_concrete(graph, member)
    lines = [f"propagation of definitions of {member}:"]
    lines.extend(
        "  " + traces[name].render() for name in topological_order(graph)
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class AbstractNodeTrace:
    """One node of a Figure 6/7-style drawing: what arrives on each
    incoming edge and the table entry the node produces."""

    class_name: str
    incoming: tuple[str, ...]  # rendered per-edge arrivals
    produced: str  # rendered Red/Blue entry, '' if member invisible

    def render(self) -> str:
        if not self.produced:
            return f"{self.class_name}: -"
        if not self.incoming:
            return f"{self.class_name}: => {self.produced}"
        arrivals = ", ".join(self.incoming)
        return f"{self.class_name}: {arrivals} => {self.produced}"


def _render_entry(entry: RedEntry | BlueEntry) -> str:
    if isinstance(entry, RedEntry):
        return f"red ({entry.ldc}, {entry.least_virtual})"
    body = ", ".join(sorted(map(str, entry.abstractions)))
    return f"blue {{{body}}}"


def trace_abstract(
    graph: ClassHierarchyGraph,
    member: str,
    *,
    table: MemberLookupTable | None = None,
) -> dict[str, AbstractNodeTrace]:
    """Per-node abstraction arrivals and results (Figures 6-7)."""
    table = table if table is not None else build_lookup_table(graph)
    traces = {}
    for class_name in topological_order(graph):
        entry = table.entry(class_name, member)
        if entry is None:
            traces[class_name] = AbstractNodeTrace(class_name, (), "")
            continue
        incoming = []
        if not graph.declares(class_name, member):
            for edge in graph.direct_bases(class_name):
                base_entry = table.entry(edge.base, member)
                if base_entry is not None:
                    incoming.append(_render_entry(base_entry))
        traces[class_name] = AbstractNodeTrace(
            class_name=class_name,
            incoming=tuple(incoming),
            produced=_render_entry(entry),
        )
    return traces


def render_abstract_trace(graph: ClassHierarchyGraph, member: str) -> str:
    """The whole Figure 6/7-style annotation as text."""
    traces = trace_abstract(graph, member)
    lines = [f"propagation of abstractions for {member}:"]
    lines.extend(
        "  " + traces[name].render() for name in topological_order(graph)
    )
    return "\n".join(lines)
