"""repro — a reproduction of "A Member Lookup Algorithm for C++".

G. Ramalingam and Harini Srinivasan, PLDI 1997.

The package implements the paper's formalism for C++ multiple inheritance
(paths over the class hierarchy graph, subobjects as path-equivalence
classes, the dominance partial order) and its efficient member lookup
algorithm, together with the reference Rossie-Friedman semantics, the
baselines the paper compares against, and the extensions it sketches.

Quickstart::

    from repro import HierarchyBuilder, build_lookup_table

    g = (HierarchyBuilder()
         .cls("A", members=["m"])
         .cls("B", bases=["A"])
         .cls("C", virtual_bases=["B"])
         .cls("D", virtual_bases=["B"], members=["m"])
         .cls("E", bases=["C", "D"])
         .build())

    table = build_lookup_table(g)
    print(table.lookup("E", "m"))   # resolves to D::m
"""

from repro.core import (
    OMEGA,
    LazyMemberLookup,
    LookupResult,
    LookupStatus,
    MemberLookupTable,
    Path,
    StaticAwareLookupTable,
    build_lookup_table,
    lookup,
    path_in,
)
from repro.errors import HierarchyError, ReproError
from repro.hierarchy import (
    Access,
    ClassHierarchyGraph,
    HierarchyBuilder,
    Member,
    MemberKind,
    hierarchy_from_spec,
    topological_order,
    virtual_bases,
)
from repro.subobjects import ReferenceLookup, SubobjectGraph, reference_lookup

__version__ = "1.0.0"

__all__ = [
    "OMEGA",
    "Access",
    "ClassHierarchyGraph",
    "HierarchyBuilder",
    "HierarchyError",
    "LazyMemberLookup",
    "LookupResult",
    "LookupStatus",
    "Member",
    "MemberKind",
    "MemberLookupTable",
    "Path",
    "ReferenceLookup",
    "ReproError",
    "StaticAwareLookupTable",
    "SubobjectGraph",
    "build_lookup_table",
    "hierarchy_from_spec",
    "lookup",
    "path_in",
    "reference_lookup",
    "topological_order",
    "virtual_bases",
]
