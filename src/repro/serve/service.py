"""The multi-tenant lookup service core (synchronous, transport-free).

A :class:`LookupService` hosts many named hierarchies (*tenants*), each
with its own snapshot chain: the tenant's
:class:`~repro.core.lookup.MemberLookupTable` is the thin writer of
:mod:`repro.core.snapshot`, so every published generation is immutable
and reads are lock-free — a query captures the tenant's chain head once
and answers against that one generation no matter what the writer does
concurrently.

The service adds the shared serving LRU on top, keyed by **snapshot
identity** ``(tenant, generation, class, member)``: a publish never
needs to hunt down stale entries, because entries of the retired
generation simply stop being probed and age out of the LRU — the
"invalidation is retiring the old snapshot" policy of the cache tier,
taken to its logical end.

This module is transport-free on purpose: the asyncio newline-JSON
front lives in :mod:`repro.serve.server` (one writer task per tenant
serializes its deltas), and benchmarks/tests drive the service core
directly without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.cache import DEFAULT_CACHE_SIZE, LookupCache
from repro.core.lookup import MemberLookupTable
from repro.core.semantics import get_semantics
from repro.core.results import LookupResult
from repro.core.snapshot import TableSnapshot
from repro.errors import ReproError
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.serialize import hierarchy_from_dict

__all__ = [
    "DuplicateTenantError",
    "LookupService",
    "Tenant",
    "TenantStats",
    "UnknownTenantError",
]


class UnknownTenantError(ReproError):
    """A tenant name was referenced but never added (or was removed)."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown tenant: {name!r}")
        self.name = name


class DuplicateTenantError(ReproError):
    """The same tenant name was added twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"tenant {name!r} already exists")
        self.name = name


@dataclass
class TenantStats:
    """Per-tenant serving counters, reported by the ``stats`` op."""

    lookups: int = 0
    batches: int = 0
    deltas_applied: int = 0


@dataclass
class Tenant:
    """One hosted hierarchy: the mutable source graph plus the writer
    that owns its snapshot chain.

    ``table`` is the snapshot-backed
    :class:`~repro.core.lookup.MemberLookupTable`; readers go through
    :attr:`snapshot` (the published chain head), the writer through
    ``table.apply_delta`` — one writer per tenant, serialized by the
    service front."""

    name: str
    graph: ClassHierarchyGraph
    table: MemberLookupTable
    stats: TenantStats = field(default_factory=TenantStats)

    @property
    def snapshot(self) -> TableSnapshot:
        """The tenant's published chain head."""
        return self.table.snapshot


class LookupService:
    """Many tenants, one shared snapshot-identity-keyed serving LRU.

    ``add_tenant`` accepts a ready
    :class:`~repro.hierarchy.graph.ClassHierarchyGraph`, a ``repro-chg``
    dict (the :mod:`repro.hierarchy.serialize` wire format), or
    ``None`` for an empty hierarchy to grow through ``apply_delta``.
    Reads (:meth:`lookup` / :meth:`lookup_many`) capture the tenant's
    chain head once and are safe from any thread; writes
    (:meth:`apply_delta`) must be serialized per tenant by the caller —
    the asyncio front does this with one writer task per tenant.
    """

    def __init__(
        self,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        mode: str = "batched",
        max_workers: Optional[int] = None,
        shards: Optional[int] = None,
        columnar: bool = True,
        semantics: Optional[str] = None,
        preload: Optional[dict] = None,
    ) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._cache = LookupCache(cache_size)
        self._mode = mode
        self._max_workers = max_workers
        self._shards = shards
        self._columnar = bool(columnar)
        self._semantics = get_semantics(semantics)
        # ``preload`` maps tenant name -> flatpack path: each tenant
        # boots straight off the mmapped file (O(mmap) cold start, no
        # table build) and is immediately writable via apply_delta.
        for tenant_name, pack_path in (preload or {}).items():
            self.add_tenant(tenant_name, pack=pack_path)

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """The currently hosted tenants, in insertion order."""
        return tuple(self._tenants)

    def tenant(self, name: str) -> Tenant:
        """The named tenant; raises :class:`UnknownTenantError`."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(name)
        return tenant

    def add_tenant(
        self,
        name: str,
        hierarchy=None,
        *,
        semantics: Optional[str] = None,
        pack=None,
    ) -> Tenant:
        """Host a new tenant and build its root snapshot.

        ``hierarchy`` is a :class:`~repro.hierarchy.graph
        .ClassHierarchyGraph`, a ``repro-chg`` dict, or ``None`` (an
        empty hierarchy).  ``pack`` instead boots the tenant from a
        flatpack file (:mod:`repro.core.flatpack`): the root snapshot
        is served off the mmapped buffer with no table build, the
        mutable source graph is rebuilt from the packed arrays, and the
        tenant's dispatch rule comes from the pack header (``semantics``
        must be omitted or agree).  ``semantics`` overrides the
        service-wide dispatch rule for this tenant
        (:mod:`repro.core.semantics`) — tenants under different
        semantics share the service and its LRU, since cache keys carry
        the tenant name.  Non-default semantics need the ``"batched"``
        table mode (the service default); the rule may also reject the
        hierarchy outright with
        :class:`~repro.core.semantics.SemanticsRejection`, in which
        case the tenant is not added.  Raises
        :class:`DuplicateTenantError` when the name is taken."""
        if name in self._tenants:
            raise DuplicateTenantError(name)
        if pack is not None:
            if hierarchy is not None:
                raise ValueError(
                    "add_tenant takes a hierarchy or a pack, not both"
                )
            from repro.core.flatpack import mmap_table

            packed = mmap_table(pack)
            if (
                semantics is not None
                and get_semantics(semantics) is not packed.semantics
            ):
                raise ValueError(
                    f"pack {str(pack)!r} was built under semantics "
                    f"{packed.semantics.name!r}, not {semantics!r}"
                )
            table = packed.to_table()
            tenant = Tenant(name=name, graph=table.graph, table=table)
            self._tenants[name] = tenant
            return tenant
        if hierarchy is None:
            graph = ClassHierarchyGraph()
        elif isinstance(hierarchy, dict):
            graph = hierarchy_from_dict(hierarchy)
        else:
            graph = hierarchy
        table = MemberLookupTable(
            graph,
            mode=self._mode,
            max_workers=self._max_workers,
            shards=self._shards,
            fastpath=True,
            columnar=self._columnar,
            semantics=(
                self._semantics if semantics is None else semantics
            ),
        )
        tenant = Tenant(name=name, graph=graph, table=table)
        self._tenants[name] = tenant
        return tenant

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant.  Its whole snapshot chain retires with the
        last reference; its shared-LRU entries are generation-keyed and
        simply age out — no sweep needed."""
        if self._tenants.pop(name, None) is None:
            raise UnknownTenantError(name)

    # ------------------------------------------------------------------
    # Reads (lock-free against one captured snapshot)
    # ------------------------------------------------------------------

    def _cached_lookup(
        self,
        tenant_name: str,
        snapshot: TableSnapshot,
        class_name: str,
        member: str,
    ) -> LookupResult:
        """One query against an already-captured snapshot, through the
        shared LRU.  The key carries the snapshot's generation, so a
        concurrent publish can never surface a stale answer: the new
        generation probes fresh keys, the old generation's entries age
        out.  Both read entry points funnel through here."""
        key = (tenant_name, snapshot.generation, class_name, member)
        result = self._cache.get(key)
        if result is None:
            result = snapshot.lookup(class_name, member)
            self._cache.put(key, result)
        return result

    def lookup(
        self, tenant_name: str, class_name: str, member: str
    ) -> LookupResult:
        """``lookup(C, m)`` for one tenant, through the shared LRU."""
        tenant = self.tenant(tenant_name)
        result = self._cached_lookup(
            tenant_name, tenant.table.snapshot, class_name, member
        )
        tenant.stats.lookups += 1
        return result

    def lookup_many(
        self, tenant_name: str, queries: Iterable[Sequence[str]]
    ) -> list[LookupResult]:
        """A batch of queries answered against **one** captured
        snapshot — a publish cannot split the batch across
        generations.

        With the service's default ``columnar=True`` the whole batch is
        one vectorized gather over the captured snapshot's columnar
        table (:meth:`TableSnapshot.lookup_many`) and skips the shared
        LRU entirely — the gather is cheaper than a cache probe per
        query.  With ``columnar=False`` the batch degrades to the
        per-query LRU path through :meth:`_cached_lookup`."""
        tenant = self.tenant(tenant_name)
        snapshot = tenant.table.snapshot
        if self._columnar:
            out = snapshot.lookup_many(queries)
        else:
            cached_lookup = self._cached_lookup
            out = [
                cached_lookup(tenant_name, snapshot, class_name, member)
                for class_name, member in queries
            ]
        tenant.stats.lookups += len(out)
        tenant.stats.batches += 1
        return out

    # ------------------------------------------------------------------
    # Writes (serialize per tenant!)
    # ------------------------------------------------------------------

    def apply_delta(
        self, tenant_name: str, mutations: Sequence[dict]
    ) -> dict:
        """Apply a batch of mutations to a tenant's source graph and
        publish the child snapshot.

        Each mutation is a dict: ``{"op": "add_class", "name": ...,
        "members": [...]}``, ``{"op": "add_member", "class": ...,
        "member": ...}`` or ``{"op": "add_edge", "base": ...,
        "derived": ..., "virtual": ...}``.  The whole batch lands in
        one publish (one cone re-sweep), and readers see either the old
        generation or the new one.  Returns a summary with the new
        generation and the publish's delta statistics."""
        tenant = self.tenant(tenant_name)
        graph = tenant.graph
        for mutation in mutations:
            op = mutation.get("op")
            if op == "add_class":
                graph.add_class(
                    mutation["name"], mutation.get("members", ())
                )
            elif op == "add_member":
                graph.add_member(mutation["class"], mutation["member"])
            elif op == "add_edge":
                graph.add_edge(
                    mutation["base"],
                    mutation["derived"],
                    virtual=bool(mutation.get("virtual", False)),
                )
            else:
                raise ValueError(f"unknown mutation op {op!r}")
        stats = tenant.table.apply_delta()
        tenant.stats.deltas_applied += 1
        snapshot = tenant.table.snapshot
        return {
            "generation": snapshot.generation,
            "classes": snapshot.ch.n_classes,
            "members": snapshot.ch.n_members,
            "cone_classes": stats.cone_classes,
            "affected_members": stats.affected_members,
            "entries_recomputed": stats.entries_recomputed,
            "entries_reused": stats.entries_reused,
            "full_rebuilds": stats.full_rebuilds,
        }

    def ingest(
        self,
        tenant_name: str,
        paths: Iterable,
        *,
        batch_size: Optional[int] = None,
        keep_going: bool = False,
    ) -> dict:
        """Stream-ingest C++ source files into a tenant's live table.

        The tenant is created empty if it does not exist yet.  Classes
        are lowered as they parse and published every ``batch_size``
        classes through the tenant's normal ``apply_delta`` path —
        readers can query the tenant between batches and see each
        published generation, exactly as with :meth:`apply_delta`.
        Like all writes, ingests must be serialized per tenant by the
        caller.  Returns the ingest report dict (files, classes,
        per-batch delta stats, parse errors when ``keep_going``)."""
        from repro.ingest.pipeline import DEFAULT_BATCH_SIZE, StreamingIngest

        if tenant_name in self._tenants:
            tenant = self._tenants[tenant_name]
        else:
            tenant = self.add_tenant(tenant_name)

        def on_batch(record) -> None:
            tenant.stats.deltas_applied += 1

        pipeline = StreamingIngest(
            table=tenant.table,
            batch_size=(
                DEFAULT_BATCH_SIZE if batch_size is None else batch_size
            ),
            keep_going=keep_going,
            on_batch=on_batch,
        )
        report = pipeline.ingest(paths)
        out = report.to_dict()
        out["generation"] = tenant.table.snapshot.generation
        out["semantic_errors"] = [
            str(d) for d in pipeline.diagnostics.errors
        ]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self, tenant_name: Optional[str] = None) -> dict:
        """Service-wide (or one tenant's) counters: per-tenant serving
        stats, generations, and the shared LRU's hit/miss/eviction
        numbers."""
        cache = self._cache.stats
        out: dict = {
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": len(self._cache),
                "maxsize": self._cache.maxsize,
            },
        }
        names = (
            [tenant_name] if tenant_name is not None else list(self._tenants)
        )
        tenants: dict = {}
        for name in names:
            tenant = self.tenant(name)
            snapshot = tenant.table.snapshot
            tenants[name] = {
                "generation": snapshot.generation,
                "classes": snapshot.ch.n_classes,
                "members": snapshot.ch.n_members,
                "entries": snapshot.entry_total,
                "semantics": tenant.table.semantics.name,
                "lookups": tenant.stats.lookups,
                "batches": tenant.stats.batches,
                "deltas_applied": tenant.stats.deltas_applied,
            }
        out["tenants"] = tenants
        return out
