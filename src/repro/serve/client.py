"""A small synchronous client for the newline-JSON serving front.

Used by the CI smoke script and handy for interactive poking; it speaks
exactly the protocol of :mod:`repro.serve.protocol` over a blocking
socket, one request/response pair at a time.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Optional, Sequence

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """The server answered ``ok: false``; carries its error envelope."""

    def __init__(self, error: dict) -> None:
        super().__init__(
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
        self.error = error


class ServeClient:
    """Blocking newline-JSON client (context manager).

    ``with ServeClient(host, port) as client: client.lookup(...)``.
    Each call sends one request line and blocks for the matching
    response; server-side failures raise :class:`ServeClientError`."""

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields) -> object:
        """Send one op and return the server's ``result`` payload."""
        request_id = next(self._ids)
        payload = {"id": request_id, "op": op, **fields}
        self._file.write(
            json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServeClientError(response.get("error", {}))
        return response.get("result")

    # Convenience wrappers mirroring the server ops -------------------

    def ping(self):
        """Liveness check; returns ``"pong"``."""
        return self.request("ping")

    def add_tenant(self, tenant: str, hierarchy: Optional[dict] = None):
        """Host a tenant, optionally from a ``repro-chg`` dict."""
        return self.request("add_tenant", tenant=tenant, hierarchy=hierarchy)

    def remove_tenant(self, tenant: str):
        """Drop a tenant (retires its snapshot chain)."""
        return self.request("remove_tenant", tenant=tenant)

    def lookup(self, tenant: str, class_name: str, member: str):
        """One ``lookup(C, m)`` against the tenant's current head."""
        return self.request(
            "lookup", tenant=tenant, **{"class": class_name, "member": member}
        )

    def lookup_many(self, tenant: str, queries: Sequence[Sequence[str]]):
        """A batch of queries answered against one snapshot."""
        return self.request(
            "lookup_many",
            tenant=tenant,
            queries=[{"class": c, "member": m} for c, m in queries],
        )

    def apply_delta(self, tenant: str, mutations: Sequence[dict]):
        """Queue one delta batch; blocks until its publish lands."""
        return self.request(
            "apply_delta", tenant=tenant, mutations=list(mutations)
        )

    def stats(self, tenant: Optional[str] = None):
        """Service (or one tenant's) counters."""
        return self.request("stats", tenant=tenant)

    def shutdown(self):
        """Ask the server to shut down cleanly."""
        return self.request("shutdown")
