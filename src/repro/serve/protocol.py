"""The newline-JSON wire protocol of the serving front.

One request per line, one response per line, UTF-8 JSON either way.
Requests carry ``{"id": ..., "op": ..., ...}``; responses echo the
``id`` and carry either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.  The ``id``
is opaque to the server — clients use it to match pipelined responses.

Lookup results cross the wire as plain dicts (see
:func:`result_to_dict`), with Ω encoded by the same ``"Ω!"`` tag the
table serializer of :mod:`repro.core.table_io` uses, so a client can
round-trip answers without importing the core types.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.paths import OMEGA, Abstraction
from repro.core.results import LookupResult

__all__ = [
    "OMEGA_TAG",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
    "result_to_dict",
]

#: Wire tag for the Ω abstraction (matches ``repro.core.table_io``).
OMEGA_TAG = "Ω!"


def _encode_abstraction(value: Optional[Abstraction]) -> Optional[str]:
    if value is None:
        return None
    return OMEGA_TAG if value is OMEGA else value


def result_to_dict(result: LookupResult) -> dict:
    """A :class:`~repro.core.results.LookupResult` as a JSON-safe dict.

    ``status`` is the enum's string value (``"unique"``,
    ``"ambiguous"``, ``"not-found"``); the witness path becomes
    ``{"nodes": [...], "virtuals": [...]}``; Ω becomes :data:`OMEGA_TAG`;
    blue abstractions are emitted sorted so output is deterministic."""
    out: dict = {
        "class": result.class_name,
        "member": result.member,
        "status": result.status.value,
    }
    if result.declaring_class is not None:
        out["declaring_class"] = result.declaring_class
    if result.least_virtual is not None:
        out["least_virtual"] = _encode_abstraction(result.least_virtual)
    if result.witness is not None:
        out["witness"] = {
            "nodes": list(result.witness.nodes),
            "virtuals": [bool(v) for v in result.witness.virtuals],
        }
    if result.blue_abstractions:
        out["blue_abstractions"] = sorted(
            _encode_abstraction(a) for a in result.blue_abstractions
        )
    if result.candidates:
        out["candidates"] = list(result.candidates)
    return out


def ok_response(request_id, result) -> dict:
    """A success envelope echoing the request ``id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error: BaseException) -> dict:
    """A failure envelope carrying the exception's type and message."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def encode_line(payload: dict) -> bytes:
    """One protocol message as a UTF-8 JSON line (trailing newline)."""
    return json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one wire line back into a message dict.

    Raises ``ValueError`` when the line is not a JSON object."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("protocol messages must be JSON objects")
    return payload
