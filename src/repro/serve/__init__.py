"""Multi-tenant snapshot serving: lock-free reads over published tables.

This package is the service tier above :mod:`repro.core.snapshot`: a
:class:`~repro.serve.service.LookupService` hosts many named tenant
hierarchies, each owning an immutable generation-stamped snapshot
chain, with a shared LRU keyed by snapshot identity.
:class:`~repro.serve.server.ServeFront` exposes the service over an
asyncio newline-JSON endpoint (``repro serve``) with one writer task
per tenant serializing its deltas, and
:class:`~repro.serve.client.ServeClient` is the matching blocking
client.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import result_to_dict
from repro.serve.server import ServeFront
from repro.serve.service import (
    DuplicateTenantError,
    LookupService,
    Tenant,
    TenantStats,
    UnknownTenantError,
)

__all__ = [
    "DuplicateTenantError",
    "LookupService",
    "ServeClient",
    "ServeClientError",
    "ServeFront",
    "Tenant",
    "TenantStats",
    "UnknownTenantError",
    "result_to_dict",
]
