"""The asyncio newline-JSON front over :class:`~repro.serve.service
.LookupService`.

Concurrency model
-----------------

*Reads stay on the event loop.*  A ``lookup`` / ``lookup_many`` op
captures the tenant's published snapshot and answers directly — no
locks, no executor hop, because snapshots are immutable and the shared
LRU's operations are single-swap atomic under the GIL.

*Writes go through one writer task per tenant.*  Each tenant owns an
``asyncio.Queue``; its writer task dequeues one delta at a time and
runs the graph mutation + publish in the default executor, so deltas to
one tenant are strictly serialized (the ``MemberLookupTable`` writer's
contract) while reads — and other tenants' writes — keep flowing.
``apply_delta`` requests resolve with the publish summary once their
delta lands.

Removing a tenant cancels its writer task after the queue drains;
pending deltas enqueued before the removal still publish.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.protocol import (
    decode_line,
    encode_line,
    error_response,
    ok_response,
    result_to_dict,
)
from repro.serve.service import LookupService

__all__ = ["ServeFront"]

#: Refuse lines longer than this (sanity limit, matches asyncio default
#: stream limit reasoning: one hierarchy payload can be large).
_LINE_LIMIT = 16 * 1024 * 1024


@dataclass
class _Writer:
    """One tenant's delta queue and the task draining it."""

    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    task: Optional[asyncio.Task] = None


class ServeFront:
    """Host a :class:`~repro.serve.service.LookupService` on a TCP
    newline-JSON endpoint.

    ``await front.start()`` binds the socket (``port=0`` picks an
    ephemeral port, exposed as :attr:`port`); ``await front.serve()``
    additionally prints the bound address and blocks until a
    ``shutdown`` op or :meth:`stop`.  Ops: ``add_tenant``,
    ``remove_tenant``, ``lookup``, ``lookup_many``, ``apply_delta``,
    ``stats``, ``ping``, ``shutdown``.
    """

    def __init__(
        self,
        service: Optional[LookupService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else LookupService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[str, _Writer] = {}
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and record the actual port."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve(self) -> None:
        """Start (if needed), announce the address, and run until
        shutdown."""
        if self._server is None:
            await self.start()
        print(f"serving on {self.host}:{self.port}", flush=True)
        await self._shutdown.wait()
        await self._shutdown_writers()
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        """Request shutdown (idempotent)."""
        self._shutdown.set()

    async def _shutdown_writers(self) -> None:
        for writer in self._writers.values():
            if writer.task is not None:
                writer.task.cancel()
        for writer in self._writers.values():
            if writer.task is not None:
                try:
                    await writer.task
                except asyncio.CancelledError:
                    pass
        self._writers.clear()

    # ------------------------------------------------------------------
    # Per-tenant writer tasks
    # ------------------------------------------------------------------

    def _writer_for(self, tenant: str) -> _Writer:
        writer = self._writers.get(tenant)
        if writer is None:
            writer = _Writer()
            writer.task = asyncio.ensure_future(
                self._writer_loop(tenant, writer.queue)
            )
            self._writers[tenant] = writer
        return writer

    async def _writer_loop(
        self, tenant: str, queue: asyncio.Queue
    ) -> None:
        loop = asyncio.get_event_loop()
        while True:
            mutations, future = await queue.get()
            if future.cancelled():
                continue
            try:
                summary = await loop.run_in_executor(
                    None, self.service.apply_delta, tenant, mutations
                )
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # propagate to the requester
                future.set_exception(exc)
            else:
                future.set_result(summary)

    async def _submit_delta(self, tenant: str, mutations: list) -> dict:
        # Validate the tenant before enqueueing so unknown names fail
        # fast instead of spinning up a writer task.
        self.service.tenant(tenant)
        writer = self._writer_for(tenant)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        writer.queue.put_nowait((mutations, future))
        return await future

    def _drop_writer(self, tenant: str) -> None:
        writer = self._writers.pop(tenant, None)
        if writer is not None and writer.task is not None:
            writer.task.cancel()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request_id = None
                try:
                    request = decode_line(line)
                    request_id = request.get("id")
                    result = await self._dispatch(request)
                    response = ok_response(request_id, result)
                except Exception as exc:
                    response = error_response(request_id, exc)
                writer.write(encode_line(response))
                await writer.drain()
                if self._shutdown.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict):
        op = request.get("op")
        service = self.service
        if op == "ping":
            return "pong"
        if op == "lookup":
            result = service.lookup(
                request["tenant"], request["class"], request["member"]
            )
            return result_to_dict(result)
        if op == "lookup_many":
            queries = [
                (q["class"], q["member"]) for q in request["queries"]
            ]
            results = service.lookup_many(request["tenant"], queries)
            return [result_to_dict(r) for r in results]
        if op == "apply_delta":
            return await self._submit_delta(
                request["tenant"], request["mutations"]
            )
        if op == "add_tenant":
            tenant = service.add_tenant(
                request["tenant"],
                request.get("hierarchy"),
                semantics=request.get("semantics"),
            )
            return {
                "tenant": tenant.name,
                "generation": tenant.snapshot.generation,
                "classes": tenant.snapshot.ch.n_classes,
                "semantics": tenant.table.semantics.name,
            }
        if op == "remove_tenant":
            name = request["tenant"]
            service.remove_tenant(name)
            self._drop_writer(name)
            return {"tenant": name, "removed": True}
        if op == "stats":
            return service.stats(request.get("tenant"))
        if op == "shutdown":
            self.stop()
            return {"shutting_down": True}
        raise ValueError(f"unknown op {op!r}")
