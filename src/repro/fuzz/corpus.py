"""The persisted regression corpus: shrunk counterexamples as JSON.

Every hierarchy on which any engine ever diverged from the
subobject-poset oracle is worth keeping forever: it re-runs in
milliseconds and pins the exact shape that once broke a lookup engine
(the paper's Figure 9 — a five-class hierarchy that g++ 2.7.2.1 got
wrong — is the founding entry).  Corpus entries live as one JSON file
per find under ``tests/corpus/``, wrapping the hierarchy in the existing
``repro-chg`` serialisation format plus provenance metadata:

.. code-block:: json

    {
      "format": "repro-fuzz-corpus",
      "version": 1,
      "meta": {"name": "...", "description": "...", "origin": "..."},
      "hierarchy": { "format": "repro-chg", ... }
    }

The campaign appends new shrunk finds here automatically
(``repro fuzz --corpus tests/corpus``); every campaign and the
``tests/fuzz/test_corpus_replay.py`` gate replay the whole directory
through the full engine matrix first, so a find can never regress
silently.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.serialize import (
    SerializationError,
    hierarchy_from_dict,
    hierarchy_to_dict,
)

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "CorpusEntry",
    "entry_from_dict",
    "entry_to_dict",
    "iter_corpus",
    "load_entry",
    "replay_corpus",
    "save_entry",
]

#: The ``format`` tag every corpus file carries.
CORPUS_FORMAT = "repro-fuzz-corpus"
#: Current corpus schema version.
CORPUS_VERSION = 1


@dataclass
class CorpusEntry:
    """One persisted counterexample: a hierarchy plus its provenance."""

    name: str
    description: str
    hierarchy: ClassHierarchyGraph
    origin: str = "manual"
    meta: dict[str, Any] = field(default_factory=dict)
    path: Optional[Path] = None

    def slug(self) -> str:
        """Filesystem-safe stem derived from :attr:`name`."""
        slug = re.sub(r"[^a-z0-9]+", "-", self.name.lower()).strip("-")
        return slug or "entry"


def entry_to_dict(entry: CorpusEntry) -> dict[str, Any]:
    """The JSON document for ``entry`` (stable, versioned)."""
    meta: dict[str, Any] = {
        "name": entry.name,
        "description": entry.description,
        "origin": entry.origin,
    }
    meta.update(entry.meta)
    return {
        "format": CORPUS_FORMAT,
        "version": CORPUS_VERSION,
        "meta": meta,
        "hierarchy": hierarchy_to_dict(entry.hierarchy),
    }


def entry_from_dict(data: dict[str, Any]) -> CorpusEntry:
    """Parse a corpus document back into a :class:`CorpusEntry`."""
    if not isinstance(data, dict) or data.get("format") != CORPUS_FORMAT:
        raise SerializationError("not a repro-fuzz-corpus document")
    if data.get("version") != CORPUS_VERSION:
        raise SerializationError(
            f"unsupported corpus version: {data.get('version')!r}"
        )
    meta = dict(data.get("meta") or {})
    name = meta.pop("name", "unnamed")
    description = meta.pop("description", "")
    origin = meta.pop("origin", "manual")
    return CorpusEntry(
        name=name,
        description=description,
        hierarchy=hierarchy_from_dict(data["hierarchy"]),
        origin=origin,
        meta=meta,
    )


def save_entry(directory: Path | str, entry: CorpusEntry) -> Path:
    """Write ``entry`` under ``directory`` (created if missing) as
    ``<slug>.json``, suffixing ``-2``, ``-3``, ... on collision; returns
    the path written (also recorded on ``entry.path``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slug = entry.slug()
    path = directory / f"{slug}.json"
    counter = 2
    while path.exists():
        path = directory / f"{slug}-{counter}.json"
        counter += 1
    path.write_text(json.dumps(entry_to_dict(entry), indent=2) + "\n")
    entry.path = path
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    """Load one corpus file."""
    path = Path(path)
    entry = entry_from_dict(json.loads(path.read_text()))
    entry.path = path
    return entry


def iter_corpus(directory: Path | str) -> Iterator[CorpusEntry]:
    """All entries under ``directory``, in sorted filename order (an
    absent directory yields nothing)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield load_entry(path)


def replay_corpus(
    directory: Path | str,
    *,
    engines: Optional[tuple[str, ...]] = None,
) -> tuple[int, list]:
    """Replay every corpus entry through the engine matrix against the
    oracle; returns ``(entries_replayed, findings)`` where each finding
    is a :class:`~repro.fuzz.report.Finding` of kind ``"replay"``."""
    from repro.fuzz.campaign import ENGINES, differential_check
    from repro.fuzz.report import Finding

    engines = engines if engines is not None else ENGINES
    replayed = 0
    findings: list[Finding] = []
    for entry in iter_corpus(directory):
        replayed += 1
        divergences, _queries, _certs = differential_check(
            entry.hierarchy, engines=engines
        )
        for divergence in divergences:
            findings.append(
                Finding(
                    iteration=-1,
                    engine=divergence.engine,
                    kind="replay",
                    family=f"corpus:{entry.name}",
                    detail=divergence.detail,
                    class_name=divergence.class_name,
                    member=divergence.member,
                    corpus_path=str(entry.path) if entry.path else None,
                )
            )
    return replayed, findings
