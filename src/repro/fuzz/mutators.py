"""Metamorphic mutation operators over class hierarchies.

Each operator transforms a hierarchy in a way whose effect on member
lookup is *predicted by the paper's definitions* (Definitions 7-9: the
subobject poset, ``Defns(C, m)`` and dominance), so the campaign can
check the lookup table against the prediction without knowing the
expected answer in advance.  The invariants:

* **add-redundant-edge** / **virtualize-join** — ``lookup(C, m)`` is a
  function of ``C``'s *own* subobject graph (Definition 7 ranges over
  the subobjects of the complete type ``C`` only), so a structural
  change at class ``X`` can affect only ``X`` and its transitive
  derived classes; every other entry of the table must be bit-identical.
* **clone-class** — a new leaf class copying ``X``'s bases and member
  names occurs in no other class's subobject graph, so all existing
  entries are preserved; and its own subobject graph is isomorphic to
  ``X``'s, so its results equal ``X``'s with ``ldc = X`` renamed to the
  clone.
* **add-overriding-definition** — declaring ``m`` in ``X`` makes the
  ``X``-subobject of ``X`` an element of ``Defns(X, m)``, and it
  contains every other subobject of ``X``, hence dominates them all
  (Definition 8): ``lookup(X, m)`` becomes UNIQUE with ``ldc = X``.
  Only entries ``(D, m)`` for ``D`` in ``X``'s cone may change.
* **add-ambiguating-definition** — a fresh root ``R`` declaring ``m``
  with a non-virtual edge ``R -> X`` adds the subobject ``[X; X.R]`` to
  ``Defns(X, m)``; it neither contains nor is contained in any other
  definition subobject of ``X`` (its containment chain is ``X -> R``,
  and ``X`` itself declares nothing new), so by Definition 9:
  ``lookup(X, m)`` was NOT_FOUND → becomes UNIQUE at ``R``; ``X``
  declares ``m`` → unchanged (the ``X``-subobject still dominates);
  otherwise → AMBIGUOUS.

``violations`` takes the two lookup functions to check as plain
callables, so the same invariant is used two ways: the campaign passes
the *fast engines* (the invariant the lookup table must preserve), and
``tests/fuzz/test_mutators.py`` passes the definitional
:class:`~repro.subobjects.reference.ReferenceLookup` on both sides,
pinning each operator's prediction at the path level independent of the
kernel it is meant to check.

All operators except **virtualize-join** are pure growth and can also be
applied *in place* to a live graph — the campaign uses that to exercise
the generation-keyed query cache across real mutations
(warm → mutate → re-query).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.results import LookupResult, describe_disagreement
from repro.hierarchy.graph import ClassHierarchyGraph

__all__ = [
    "AppliedMutation",
    "MUTATORS",
    "Mutator",
    "copy_hierarchy",
    "mutate",
]

LookupFn = Callable[[str, str], LookupResult]


def copy_hierarchy(
    graph: ClassHierarchyGraph,
    *,
    virtualize_bases_of: Optional[str] = None,
) -> ClassHierarchyGraph:
    """An independent deep copy of ``graph`` (same classes, members and
    edges, same declaration order).  ``virtualize_bases_of`` names one
    class whose direct-base edges are all flipped to virtual in the copy
    — the one mutation the append-only graph API cannot express in
    place."""
    copy = ClassHierarchyGraph()
    for name in graph.classes:
        copy.add_class(
            name,
            graph.declared_members(name).values(),
            is_struct=graph.is_struct(name),
        )
    # Edges second: a mutation can graft a base class that is *declared*
    # later than its derived class (e.g. the ambiguating root).
    for edge in graph.edges:
        copy.add_edge(
            edge.base,
            edge.derived,
            virtual=edge.virtual or edge.derived == virtualize_bases_of,
            access=edge.access,
        )
    return copy


def _cone(graph: ClassHierarchyGraph, target: str) -> frozenset[str]:
    """``target`` plus its transitive derived classes — the only classes
    whose lookups a mutation at ``target`` is allowed to change."""
    return frozenset({target} | set(graph.descendants(target)))


def _confinement_violations(
    before: ClassHierarchyGraph,
    after: ClassHierarchyGraph,
    lookup_before: LookupFn,
    lookup_after: LookupFn,
    may_change: Callable[[str, str], bool],
) -> list[str]:
    """Compare every pre-existing ``(class, member)`` entry across the
    mutation; entries for which ``may_change`` is false must agree."""
    universe = sorted(set(before.member_names()) | set(after.member_names()))
    out: list[str] = []
    for class_name in before.classes:
        for member in universe:
            if may_change(class_name, member):
                continue
            diff = describe_disagreement(
                lookup_after(class_name, member),
                lookup_before(class_name, member),
            )
            if diff is not None:
                out.append(
                    f"{class_name}::{member} changed outside the "
                    f"operator's cone: {diff}"
                )
    return out


class Mutator:
    """One metamorphic operator: pick a target, apply the transformation
    (to a copy, or in place when the operator is pure growth), and check
    the paper-derived invariant across the mutation."""

    #: Operator name (used in reports and the campaign's counters).
    name: str = "?"
    #: One-line statement of the paper-derived invariant.
    invariant: str = "?"
    #: True when the operator is pure growth (expressible through the
    #: append-only graph API) and so can mutate a live graph in place.
    in_place: bool = True

    def pick(
        self, graph: ClassHierarchyGraph, rng: random.Random
    ) -> Optional[tuple]:
        """Choose a target, deterministically under ``rng``; ``None``
        when the operator does not apply to this hierarchy."""
        raise NotImplementedError

    def apply(
        self, graph: ClassHierarchyGraph, plan: tuple
    ) -> ClassHierarchyGraph:
        """The mutated hierarchy, as a fresh validated copy."""
        copy = copy_hierarchy(graph)
        self.apply_in_place(copy, plan)
        copy.validate()
        return copy

    def apply_in_place(
        self, graph: ClassHierarchyGraph, plan: tuple
    ) -> None:
        """Apply the mutation to ``graph`` itself (only when
        :attr:`in_place` is true)."""
        raise NotImplementedError

    def violations(
        self,
        before: ClassHierarchyGraph,
        after: ClassHierarchyGraph,
        plan: tuple,
        lookup_before: LookupFn,
        lookup_after: LookupFn,
    ) -> list[str]:
        """Every way the two lookup functions violate the operator's
        invariant (empty list = invariant holds)."""
        raise NotImplementedError


class AddRedundantEdge(Mutator):
    """Add a direct edge ``B -> D`` where ``B`` is already a transitive
    base of ``D``: new subobjects appear in ``D``'s cone only."""

    name = "add-redundant-edge"
    invariant = (
        "lookup is confined to the target's cone (Definitions 7-9 range "
        "over the queried class's own subobject graph)"
    )

    def pick(self, graph, rng):
        candidates = [
            (base, derived)
            for derived in graph.classes
            for base in sorted(graph.ancestors(derived))
            if base not in graph.direct_base_names(derived)
        ]
        if not candidates:
            return None
        base, derived = rng.choice(candidates)
        return (base, derived, rng.random() < 0.3)

    def apply_in_place(self, graph, plan):
        base, derived, virtual = plan
        graph.add_edge(base, derived, virtual=virtual)

    def violations(self, before, after, plan, lookup_before, lookup_after):
        _base, derived, _virtual = plan
        cone = _cone(before, derived)
        return _confinement_violations(
            before,
            after,
            lookup_before,
            lookup_after,
            lambda class_name, _member: class_name in cone,
        )


class VirtualizeJoin(Mutator):
    """Flip every direct-base edge of a multiple-inheritance join to
    virtual (the paper's Figure 1 → Figure 2 move): subobjects are
    shared instead of duplicated, in the join's cone only."""

    name = "virtualize-join"
    invariant = (
        "lookup is confined to the join's cone (classes whose subobject "
        "graph does not contain the join are untouched)"
    )
    in_place = False  # edge virtuality is immutable on a live graph

    def pick(self, graph, rng):
        candidates = [
            name
            for name in graph.classes
            if graph.base_count(name) >= 2
            and any(not e.virtual for e in graph.direct_bases(name))
        ]
        if not candidates:
            return None
        return (rng.choice(candidates),)

    def apply(self, graph, plan):
        copy = copy_hierarchy(graph, virtualize_bases_of=plan[0])
        copy.validate()
        return copy

    def violations(self, before, after, plan, lookup_before, lookup_after):
        cone = _cone(before, plan[0])
        return _confinement_violations(
            before,
            after,
            lookup_before,
            lookup_after,
            lambda class_name, _member: class_name in cone,
        )


class CloneClass(Mutator):
    """Add a leaf class duplicating a target's direct bases and member
    names: existing lookups are untouched and the clone's answers are
    isomorphic to the target's."""

    name = "clone-class"
    invariant = (
        "existing entries are preserved verbatim; the clone's results "
        "equal the target's with ldc = target renamed to the clone "
        "(isomorphic subobject graphs)"
    )

    def pick(self, graph, rng):
        candidates = [
            name for name in graph.classes if f"{name}__clone" not in graph
        ]
        if not candidates:
            return None
        target = rng.choice(candidates)
        return (target, f"{target}__clone")

    def apply_in_place(self, graph, plan):
        target, clone = plan
        graph.add_class(
            clone,
            graph.declared_members(target).values(),
            is_struct=graph.is_struct(target),
        )
        for edge in graph.direct_bases(target):
            graph.add_edge(edge.base, clone, virtual=edge.virtual, access=edge.access)

    def violations(self, before, after, plan, lookup_before, lookup_after):
        target, clone = plan
        out = _confinement_violations(
            before,
            after,
            lookup_before,
            lookup_after,
            lambda _class_name, _member: False,  # nothing may change
        )
        for member in sorted(set(after.member_names())):
            original = lookup_after(target, member)
            mirrored = lookup_after(clone, member)
            if original.status is not mirrored.status:
                out.append(
                    f"clone {clone}::{member} has status {mirrored.status}, "
                    f"target has {original.status}"
                )
                continue
            if original.is_unique:
                expected = (
                    clone
                    if original.declaring_class == target
                    else original.declaring_class
                )
                if mirrored.declaring_class != expected:
                    out.append(
                        f"clone {clone}::{member} resolved to "
                        f"{mirrored.declaring_class}, expected {expected}"
                    )
        return out


class AddOverridingDefinition(Mutator):
    """Declare an inherited member name directly in a class: the new
    generated definition hides everything above it."""

    name = "add-overriding-definition"
    invariant = (
        "the target's own subobject contains all others, so its new "
        "definition dominates Defns(target, m) (Definition 8); only "
        "(cone, m) entries may change"
    )

    def pick(self, graph, rng):
        candidates = [
            (name, member)
            for name in graph.classes
            for member in graph.member_names()
            if not graph.declares(name, member)
            and any(
                graph.declares(ancestor, member)
                for ancestor in graph.ancestors(name)
            )
        ]
        if not candidates:
            return None
        return rng.choice(candidates)

    def apply_in_place(self, graph, plan):
        target, member = plan
        graph.add_member(target, member)

    def violations(self, before, after, plan, lookup_before, lookup_after):
        target, member = plan
        cone = _cone(before, target)
        out = _confinement_violations(
            before,
            after,
            lookup_before,
            lookup_after,
            lambda class_name, m: class_name in cone and m == member,
        )
        result = lookup_after(target, member)
        if not result.is_unique or result.declaring_class != target:
            out.append(
                f"lookup({target}, {member}) after overriding is {result}, "
                f"expected UNIQUE at {target}"
            )
        return out


class AddAmbiguatingDefinition(Mutator):
    """Graft a fresh root declaring an existing member name onto a class
    via a non-virtual edge: the new definition is incomparable to every
    existing one, so the target's entry flips exactly as Definitions 7-9
    predict."""

    name = "add-ambiguating-definition"
    invariant = (
        "at the target: NOT_FOUND becomes UNIQUE at the new root, a "
        "direct declaration stays UNIQUE at the target, anything else "
        "becomes AMBIGUOUS; only (cone, m) entries may change"
    )

    def pick(self, graph, rng):
        if "FuzzAmb" in graph:
            return None
        members = graph.member_names()
        member = rng.choice(sorted(members)) if members else "m"
        return (rng.choice(list(graph.classes)), member, "FuzzAmb")

    def apply_in_place(self, graph, plan):
        target, member, root = plan
        graph.add_class(root, [member])
        graph.add_edge(root, target, virtual=False)

    def violations(self, before, after, plan, lookup_before, lookup_after):
        target, member, root = plan
        cone = _cone(before, target)
        out = _confinement_violations(
            before,
            after,
            lookup_before,
            lookup_after,
            lambda class_name, m: class_name in cone and m == member,
        )
        previous = lookup_before(target, member)
        result = lookup_after(target, member)
        if before.declares(target, member):
            if not result.is_unique or result.declaring_class != target:
                out.append(
                    f"lookup({target}, {member}) is {result}, but the "
                    f"target's own declaration must keep dominating"
                )
        elif previous.is_not_found:
            if not result.is_unique or result.declaring_class != root:
                out.append(
                    f"lookup({target}, {member}) is {result}, expected "
                    f"UNIQUE at the new root {root} (sole definition)"
                )
        elif not result.is_ambiguous:
            out.append(
                f"lookup({target}, {member}) is {result}, expected "
                f"AMBIGUOUS (the new root's definition is incomparable "
                f"to the existing ones)"
            )
        return out


#: The operator suite the campaign draws from, in a stable order.
MUTATORS: tuple[Mutator, ...] = (
    AddRedundantEdge(),
    VirtualizeJoin(),
    CloneClass(),
    AddOverridingDefinition(),
    AddAmbiguatingDefinition(),
)


@dataclass(frozen=True)
class AppliedMutation:
    """A mutator together with the concrete plan it was applied with."""

    mutator: Mutator
    plan: tuple

    @property
    def name(self) -> str:
        """The operator's name."""
        return self.mutator.name

    def describe(self) -> str:
        """``operator(plan)`` for reports."""
        return f"{self.name}{self.plan!r}"

    def violations(
        self,
        before: ClassHierarchyGraph,
        after: ClassHierarchyGraph,
        lookup_before: LookupFn,
        lookup_after: LookupFn,
    ) -> list[str]:
        """Check the operator's invariant for this application."""
        return self.mutator.violations(
            before, after, self.plan, lookup_before, lookup_after
        )


def mutate(
    graph: ClassHierarchyGraph,
    rng: random.Random,
    *,
    mutators: tuple[Mutator, ...] = MUTATORS,
    in_place_only: bool = False,
) -> Optional[tuple[ClassHierarchyGraph, AppliedMutation]]:
    """Apply one randomly chosen applicable operator to (a copy of)
    ``graph``; ``None`` when no operator applies.  With
    ``in_place_only`` the choice is restricted to pure-growth operators
    and the mutation is applied to ``graph`` *itself* (the
    cached-after-mutation leg of the campaign relies on this)."""
    pool = [m for m in mutators if m.in_place] if in_place_only else list(mutators)
    for mutator in rng.sample(pool, len(pool)):
        plan = mutator.pick(graph, rng)
        if plan is None:
            continue
        if in_place_only:
            mutator.apply_in_place(graph, plan)
            return graph, AppliedMutation(mutator, plan)
        return mutator.apply(graph, plan), AppliedMutation(mutator, plan)
    return None
