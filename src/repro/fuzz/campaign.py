"""Seeded differential fuzzing campaigns over the full engine matrix.

One campaign iteration draws a hierarchy from a rotating set of
generator families (seeded random DAGs, layered DAGs, the paper's
adversarial shapes — diamond ladders, ambiguous fans, blue-heavy joins,
grids — and the paper figures themselves), optionally perturbs it with
metamorphic mutations (:mod:`repro.fuzz.mutators`), and then asks every
lookup engine every query ``(class, member)`` over the member universe
plus one deliberately missing name, cross-checking each answer against
the definitional :class:`~repro.subobjects.reference.ReferenceLookup`
oracle with :func:`~repro.core.results.describe_disagreement`.

On top of the oracle comparison each iteration:

* **translation validation** — one engine (rotating per iteration) has
  its entire answer surface certified with
  :func:`repro.core.certify.certify`;
* **metamorphic invariants** — every applied mutation's paper-derived
  invariant is checked against the fast lookup tables;
* **cache staleness** — periodically, a
  :class:`~repro.core.cache.CachedMemberLookup` is warmed, the live
  graph is mutated in place (pure-growth operators), and every cached
  answer is re-compared against a fresh oracle: the surgical
  generation-keyed invalidation must never serve a stale row;
* **delta storms** — periodically, a warm
  :class:`~repro.core.lookup.MemberLookupTable` (build mode drawn per
  iteration) absorbs a burst of random in-place growth mutations
  through :meth:`~repro.core.lookup.MemberLookupTable.apply_delta`,
  then its whole surface is differenced against a from-scratch rebuild
  *and* the subobject-poset oracle: cone-restricted maintenance must be
  indistinguishable from rebuilding;
* **snapshot chains** — periodically, a snapshot chain absorbs a storm
  of publishes with random retirements interleaved, and every retained
  :class:`~repro.core.snapshot.TableSnapshot` is cross-checked against
  the oracle of the hierarchy *at its own generation*: published
  snapshots must stay immutable (and keep their generation stamp) no
  matter what the writer published or retired after them;
* **cross-semantics pairs** — periodically, the hierarchy is built
  under every registered dispatch semantics
  (:mod:`repro.core.semantics`) and all pairs are diffed over the full
  query surface: any disagreement not covered by the divergence
  catalog (:mod:`repro.fuzz.cross_semantics`) is a finding.

Every divergence becomes a :class:`~repro.fuzz.report.Finding`; mismatch
and certificate findings are delta-debugged to a minimal counterexample
(:mod:`repro.fuzz.shrink`) and, when a corpus directory is given,
persisted as a regression corpus entry (:mod:`repro.fuzz.corpus`).
Campaigns are fully deterministic in ``seed`` (iteration-count budgets;
wall-clock budgets cut the same sequence short).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.core.cache import CachedMemberLookup
from repro.core.certify import certify
from repro.core.lazy import LazyMemberLookup
from repro.core.incremental import IncrementalLookupEngine
from repro.core.lookup import build_lookup_table
from repro.core.snapshot import TableSnapshot
from repro.core.results import describe_disagreement
from repro.core.semantics import SEMANTICS_NAMES
from repro.fuzz.corpus import CorpusEntry, replay_corpus, save_entry
from repro.fuzz.cross_semantics import cross_semantics_check
from repro.fuzz.mutators import AppliedMutation, copy_hierarchy, mutate
from repro.fuzz.report import CampaignReport, Finding
from repro.fuzz.shrink import shrink_hierarchy
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.serialize import hierarchy_to_dict
from repro.subobjects.reference import ReferenceLookup
from repro.workloads import (
    ambiguous_fan,
    blue_heavy_hierarchy,
    deep_ambiguous_ladder,
    grid,
    layered_hierarchy,
    nonvirtual_diamond_ladder,
    random_hierarchy,
    virtual_diamond_ladder,
    wide_unambiguous,
)
from repro.workloads.paper_figures import ALL_FIGURES

__all__ = [
    "ENGINES",
    "Divergence",
    "build_engine",
    "differential_check",
    "run_campaign",
]

#: The full engine matrix a campaign compares by default: the eager
#: table in its three explicit build modes, the batched table with the
#: certified-unambiguous flat serving overlay (``fastpath``), the lazy,
#: cached and incremental engines, plus a bare published
#: :class:`~repro.core.snapshot.TableSnapshot` (``snapshot``) and the
#: same snapshot answering every query through the columnar batch
#: gather (``columnar`` — each oracle probe goes through
#: ``lookup_many`` so the dense-array path is differentially tested).
ENGINES: tuple[str, ...] = (
    "per-member",
    "batched",
    "sharded",
    "fastpath",
    "cached",
    "lazy",
    "incremental",
    "snapshot",
    "columnar",
)

#: A member name no generator family ever declares — every iteration
#: also queries it everywhere, pinning the NOT_FOUND row of each engine.
MISSING_MEMBER = "fuzz_absent_member"


class _ColumnarProbe:
    """Adapter giving the columnar batch kernel the campaign's engine
    shape: ``lookup(C, m)`` is a one-element ``lookup_many`` batch, so
    every differential probe exercises the dense-array gather path."""

    def __init__(self, snapshot: TableSnapshot) -> None:
        self._snapshot = snapshot

    def lookup(self, class_name: str, member: str):
        return self._snapshot.lookup_many([(class_name, member)])[0]


def build_engine(name: str, graph: ClassHierarchyGraph):
    """Construct the named lookup engine over ``graph``.

    The eager modes build the whole table up front (``sharded`` with two
    worker processes over two shards, so the parallel merge path really
    runs); ``incremental`` replays the hierarchy declaration-by-
    declaration through :class:`~repro.core.incremental.IncrementalLookupEngine`
    with queries interleaved between mutations, so surgical eviction is
    exercised, not just the final state.
    """
    if name in ("per-member", "batched"):
        return build_lookup_table(graph, mode=name)
    if name == "sharded":
        return build_lookup_table(graph, mode="sharded", max_workers=2, shards=2)
    if name == "fastpath":
        # The batched table serving certified-unambiguous columns from
        # flat arrays (repro.core.fastpath), red/blue rows elsewhere.
        return build_lookup_table(graph, mode="batched", fastpath=True)
    if name == "lazy":
        return LazyMemberLookup(graph)
    if name == "cached":
        # A small threshold so the lazy flat-column promotion (and its
        # demote-on-mutation path) is exercised by every campaign, not
        # just the dedicated unit tests.
        return CachedMemberLookup(graph, maxsize=64, fastpath_threshold=4)
    if name == "snapshot":
        # The serving tier's unit: an immutable generation-stamped
        # published table, queried directly (no writer façade).
        return TableSnapshot.build(graph, mode="batched", fastpath=True)
    if name == "columnar":
        # The same published snapshot, but every query is answered by
        # the columnar batch kernel: lookup() routes through a
        # one-element lookup_many(), so the dense-array gather path is
        # differentially checked against the oracle like any engine.
        return _ColumnarProbe(TableSnapshot.build(graph, mode="batched"))
    if name == "incremental":
        engine = IncrementalLookupEngine()
        members = graph.member_names()
        probe = members[0] if members else MISSING_MEMBER
        for class_name in graph.classes:
            engine.add_class(
                class_name,
                graph.declared_members(class_name).values(),
                is_struct=graph.is_struct(class_name),
            )
        for index, edge in enumerate(graph.edges):
            engine.add_edge(
                edge.base, edge.derived, virtual=edge.virtual, access=edge.access
            )
            if index % 3 == 0:
                # Interleave queries so later edges must surgically evict
                # entries the engine has already memoised.
                engine.lookup(edge.derived, probe)
        return engine
    raise ValueError(f"unknown engine {name!r} (choose from {ENGINES})")


@dataclass
class Divergence:
    """One way an engine departed from the oracle on one hierarchy."""

    engine: str
    kind: str  # "mismatch" | "exception" | "build-error" | "certificate"
    detail: str
    class_name: Optional[str] = None
    member: Optional[str] = None


def _query_surface(graph: ClassHierarchyGraph) -> list[tuple[str, str]]:
    names = list(graph.member_names()) + [MISSING_MEMBER]
    return [(c, m) for c in graph.classes for m in names]


def differential_check(
    graph: ClassHierarchyGraph,
    *,
    engines: Sequence[str] = ENGINES,
    certify_engine: Optional[str] = None,
) -> tuple[list[Divergence], int, int]:
    """Run the full query surface of ``graph`` through every named
    engine and compare each answer against the subobject-poset oracle.

    Returns ``(divergences, queries_checked, certificates_checked)``.
    Mismatches are reported once per engine (the first disagreeing
    query); engines that fail to build, or raise mid-query, produce
    ``"build-error"`` / ``"exception"`` divergences instead of
    propagating.  ``certify_engine`` names one engine whose entire
    surface is additionally certified against Definitions 7-9
    (translation validation); invalid certificates become
    ``"certificate"`` divergences.
    """
    oracle = ReferenceLookup(graph)
    surface = _query_surface(graph)
    divergences: list[Divergence] = []
    queries_checked = 0
    certificates_checked = 0
    for engine_name in engines:
        try:
            engine = build_engine(engine_name, graph)
        except Exception as exc:
            divergences.append(
                Divergence(
                    engine=engine_name,
                    kind="build-error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        for class_name, member in surface:
            try:
                answer = engine.lookup(class_name, member)
            except Exception as exc:
                divergences.append(
                    Divergence(
                        engine=engine_name,
                        kind="exception",
                        detail=f"{type(exc).__name__}: {exc}",
                        class_name=class_name,
                        member=member,
                    )
                )
                break
            queries_checked += 1
            diff = describe_disagreement(answer, oracle.lookup(class_name, member))
            if diff is not None:
                divergences.append(
                    Divergence(
                        engine=engine_name,
                        kind="mismatch",
                        detail=diff,
                        class_name=class_name,
                        member=member,
                    )
                )
                break
        else:
            if engine_name == certify_engine:
                for class_name, member in surface:
                    certificate = certify(
                        graph,
                        engine.lookup(class_name, member),
                        reference=oracle,
                    )
                    certificates_checked += 1
                    if not certificate:
                        divergences.append(
                            Divergence(
                                engine=engine_name,
                                kind="certificate",
                                detail="; ".join(certificate.failures),
                                class_name=class_name,
                                member=member,
                            )
                        )
                        break
    return divergences, queries_checked, certificates_checked


def _draw_family(
    iteration: int, rng: random.Random, max_classes: int
) -> tuple[str, ClassHierarchyGraph]:
    """The iteration's hierarchy: families rotate deterministically, the
    per-family parameters are drawn from ``rng``."""
    families: list[tuple[str, Callable[[], ClassHierarchyGraph]]] = [
        (
            "random",
            lambda: random_hierarchy(
                rng.randint(3, max_classes),
                seed=rng.randrange(2**32),
                virtual_probability=rng.choice((0.0, 0.3, 0.6)),
                member_probability=rng.choice((0.2, 0.4, 0.7)),
            ),
        ),
        (
            "layered",
            lambda: layered_hierarchy(
                rng.randint(2, 4),
                rng.randint(2, 3),
                seed=rng.randrange(2**32),
                virtual_probability=rng.choice((0.0, 0.3, 0.6)),
            ),
        ),
        (
            "virtual-diamond",
            lambda: virtual_diamond_ladder(rng.randint(1, 3)),
        ),
        (
            "nonvirtual-diamond",
            lambda: nonvirtual_diamond_ladder(rng.randint(1, 3)),
        ),
        ("ambiguous-fan", lambda: ambiguous_fan(rng.randint(2, 6))),
        (
            "blue-heavy",
            lambda: blue_heavy_hierarchy(rng.randint(2, 4), rng.randint(1, 3)),
        ),
        ("wide-unambiguous", lambda: wide_unambiguous(rng.randint(2, 6))),
        ("grid", lambda: grid(rng.randint(2, 3), rng.randint(2, 3))),
        ("deep-ambiguous", lambda: deep_ambiguous_ladder(rng.randint(1, 2))),
        (
            "paper-figure",
            lambda: ALL_FIGURES[rng.choice(sorted(ALL_FIGURES))](),
        ),
    ]
    name, factory = families[iteration % len(families)]
    return name, factory()


def _check_mutation_invariant(
    before: ClassHierarchyGraph,
    after: ClassHierarchyGraph,
    applied: AppliedMutation,
) -> list[str]:
    """The mutation's invariant, checked against the fast lookup tables
    (the engines are what the invariant constrains)."""
    table_before = build_lookup_table(before, mode="batched")
    table_after = build_lookup_table(after, mode="batched")
    return applied.violations(
        before, after, table_before.lookup, table_after.lookup
    )


def _stale_cache_check(
    graph: ClassHierarchyGraph, rng: random.Random
) -> tuple[Optional[AppliedMutation], list[Divergence], int]:
    """Warm a cache on ``graph``, mutate the graph *in place*, and
    re-compare every cached answer with a fresh oracle — the
    generation-keyed invalidation must never serve a stale row (nor a
    stale flat column: the small promotion threshold means warm columns
    are usually flat by the time the mutation lands)."""
    cached = CachedMemberLookup(graph, maxsize=64, fastpath_threshold=2)
    for class_name, member in _query_surface(graph):
        cached.lookup(class_name, member)  # warm (and overflow) the LRU
    applied = mutate(graph, rng, in_place_only=True)
    if applied is None:
        return None, [], 0
    _graph, mutation = applied
    oracle = ReferenceLookup(graph)
    divergences: list[Divergence] = []
    checked = 0
    for class_name, member in _query_surface(graph):
        checked += 1
        diff = describe_disagreement(
            cached.lookup(class_name, member), oracle.lookup(class_name, member)
        )
        if diff is not None:
            divergences.append(
                Divergence(
                    engine="cached",
                    kind="stale-cache",
                    detail=f"after {mutation.describe()}: {diff}",
                    class_name=class_name,
                    member=member,
                )
            )
            break
    return mutation, divergences, checked


def _delta_storm_check(
    graph: ClassHierarchyGraph,
    rng: random.Random,
    engines: Sequence[str],
) -> tuple[list[str], list[Divergence], int]:
    """Warm an eager table on a copy of ``graph``, hit it with a burst
    of random in-place growth mutations — ``apply_delta`` after each —
    and difference the maintained table against a from-scratch rebuild
    plus the subobject-poset oracle.

    The build mode is drawn per check (restricted to the campaign's
    engine matrix so e.g. the broken-engine tests keep ``sharded``'s
    worker processes out of play), so the cone sweep, the per-member
    column refold and the member-sharded delta path all get storm
    coverage.  Returns ``(mutation names, divergences, queries)``.
    """
    storm = copy_hierarchy(graph)
    modes = [
        name
        for name in ("batched", "per-member", "sharded", "fastpath")
        if name in engines
    ] or ["batched"]
    mode = rng.choice(modes)
    if mode == "sharded":
        table = build_lookup_table(
            storm, mode="sharded", max_workers=2, shards=2
        )
    elif mode == "fastpath":
        # Storms against the flat overlay: mutations that ambiguate a
        # certified column must demote it (and only it) mid-storm.
        table = build_lookup_table(storm, mode="batched", fastpath=True)
    else:
        table = build_lookup_table(storm, mode=mode)
    applied_names: list[str] = []
    for _ in range(rng.randint(1, 3)):
        applied = mutate(storm, rng, in_place_only=True)
        if applied is None:
            break
        _graph, mutation = applied
        applied_names.append(mutation.name)
        table.apply_delta()
    if not applied_names:
        return [], [], 0
    rebuilt = build_lookup_table(storm, mode="batched")
    oracle = ReferenceLookup(storm)
    divergences: list[Divergence] = []
    checked = 0
    for class_name, member in _query_surface(storm):
        checked += 1
        maintained = table.lookup(class_name, member)
        diff = describe_disagreement(
            maintained, oracle.lookup(class_name, member)
        )
        if diff is None and maintained != rebuilt.lookup(class_name, member):
            diff = (
                f"maintained table disagrees with from-scratch rebuild: "
                f"{maintained} != {rebuilt.lookup(class_name, member)}"
            )
        if diff is not None:
            divergences.append(
                Divergence(
                    engine=mode,
                    kind="delta-storm",
                    detail=(
                        f"after {'+'.join(applied_names)}: {diff}"
                    ),
                    class_name=class_name,
                    member=member,
                )
            )
            break
    return applied_names, divergences, checked


def _snapshot_chain_check(
    graph: ClassHierarchyGraph, rng: random.Random
) -> tuple[int, list[Divergence], int]:
    """Storm a snapshot chain with interleaved publish/retire and
    cross-check every *retained* snapshot against the subobject-poset
    oracle of the hierarchy **at its own generation**.

    A copy of ``graph`` grows through random in-place mutations; each
    publish captures the new chain head alongside a frozen copy of the
    source hierarchy, and random retained snapshots are retired
    (dropped) along the way.  At the end, each survivor must (a) still
    carry the generation it was published at, and (b) answer its whole
    query surface exactly like a fresh oracle over its frozen
    hierarchy — immutability under everything the writer did since.
    Returns ``(publishes, divergences, queries)``.
    """
    chain = copy_hierarchy(graph)
    table = build_lookup_table(chain, mode="batched", fastpath=True)
    retained = [
        (table.snapshot, copy_hierarchy(chain), chain.compile().generation)
    ]
    publishes = 0
    for _ in range(rng.randint(2, 4)):
        applied = mutate(chain, rng, in_place_only=True)
        if applied is None:
            break
        table.apply_delta()
        publishes += 1
        retained.append(
            (table.snapshot, copy_hierarchy(chain), chain.compile().generation)
        )
        if len(retained) > 2 and rng.random() < 0.5:
            # Retire one older snapshot; the head always survives.
            retained.pop(rng.randrange(len(retained) - 1))
    if publishes == 0:
        return 0, [], 0
    divergences: list[Divergence] = []
    checked = 0
    for snapshot, frozen, generation in retained:
        if snapshot.generation != generation:
            divergences.append(
                Divergence(
                    engine="snapshot",
                    kind="snapshot-chain",
                    detail=(
                        f"snapshot published at generation {generation} "
                        f"now reports {snapshot.generation}"
                    ),
                )
            )
            break
        oracle = ReferenceLookup(frozen)
        for class_name, member in _query_surface(frozen):
            checked += 1
            diff = describe_disagreement(
                snapshot.lookup(class_name, member),
                oracle.lookup(class_name, member),
            )
            if diff is not None:
                divergences.append(
                    Divergence(
                        engine="snapshot",
                        kind="snapshot-chain",
                        detail=(
                            f"retained generation {generation} drifted "
                            f"after {publishes} publishes: {diff}"
                        ),
                        class_name=class_name,
                        member=member,
                    )
                )
                break
        if divergences:
            break
    return publishes, divergences, checked


def _roundtrip_eligible(graph: ClassHierarchyGraph) -> bool:
    """Only hierarchies whose every class and member name is a plain,
    non-keyword identifier can be rendered as parseable C++ — corpus
    graphs with qualified (``ns::C``) or generated exotic names are
    skipped, not failed."""
    from repro.frontend.lexer import KEYWORDS

    for name in graph.classes:
        if not name.isidentifier() or name in KEYWORDS:
            return False
        for member in graph.declared_members(name).values():
            if not member.name.isidentifier() or member.name in KEYWORDS:
                return False
    return True


def _roundtrip_check(
    graph: ClassHierarchyGraph,
) -> tuple[bool, list[Divergence]]:
    """The frontend-fidelity leg: emit the hierarchy as C++ source,
    push it back through :func:`repro.frontend.sema.analyze`, and
    require the identical graph — same classes in order, same edges
    (base/derived/virtuality/access), same per-class member sets with
    kind, staticness and access, same struct-ness — with no frontend
    diagnostics.  Returns ``(ran, divergences)``."""
    from repro.frontend.errors import FrontendError
    from repro.frontend.sema import analyze
    from repro.workloads.emit_cpp import emit_cpp

    if not _roundtrip_eligible(graph):
        return False, []

    def shape(g: ClassHierarchyGraph, order):
        # Edges compare per derived class (base order is what lookup
        # depends on); global edge-addition order is not observable.
        edges = {
            name: tuple(
                (e.base, e.virtual, str(e.access))
                for e in g.direct_bases(name)
            )
            for name in order
        }
        members = {
            name: {
                m.name: (m.kind, m.is_static, str(m.access))
                for m in g.declared_members(name).values()
            }
            for name in order
        }
        structness = {name: g.is_struct(name) for name in order}
        return tuple(order), edges, members, structness

    source = emit_cpp(graph)
    try:
        program = analyze(source)
    except FrontendError as exc:
        return True, [
            Divergence(
                engine="frontend",
                kind="roundtrip",
                detail=f"emitted source failed to parse: {exc}",
            )
        ]
    if program.diagnostics.has_errors():
        first = program.diagnostics.errors[0]
        return True, [
            Divergence(
                engine="frontend",
                kind="roundtrip",
                detail=(
                    "emitted source produced "
                    f"{len(program.diagnostics.errors)} frontend "
                    f"error(s), first: {first}"
                ),
            )
        ]
    from repro.workloads.emit_cpp import emission_order

    want = shape(graph, emission_order(graph))
    got = shape(program.hierarchy, list(program.hierarchy.classes))
    divergences: list[Divergence] = []
    labels = ("classes", "edges", "members", "struct-ness")
    for label, lhs, rhs in zip(labels, want, got):
        if lhs != rhs:
            divergences.append(
                Divergence(
                    engine="frontend",
                    kind="roundtrip",
                    detail=(
                        f"{label} changed across emit_cpp→analyze: "
                        f"expected {lhs!r:.200}, got {rhs!r:.200}"
                    ),
                )
            )
    return True, divergences


def run_campaign(
    *,
    seed: int = 0,
    budget: int = 500,
    engines: Sequence[str] = ENGINES,
    corpus_dir: Optional[Path | str] = None,
    time_budget: Optional[float] = None,
    max_classes: int = 12,
    mutation_probability: float = 0.6,
    shrink: bool = True,
    semantics: Optional[Sequence[str]] = None,
) -> CampaignReport:
    """Run a differential fuzzing campaign and return its report.

    ``budget`` bounds iterations; ``time_budget`` (seconds) additionally
    cuts the run short.  ``corpus_dir`` names the regression corpus: its
    entries are replayed through the engine matrix *before* fuzzing
    starts, and new shrunk finds are persisted into it.  ``engines``
    restricts the matrix (the broken-engine tests exclude ``sharded``,
    whose worker processes would not see a monkeypatched kernel).
    ``semantics`` restricts the cross-semantics pairwise leg (default:
    every registered semantics).  Deterministic in ``seed`` for a
    fixed iteration budget.
    """
    engines = tuple(engines)
    semantics = (
        tuple(semantics) if semantics is not None else SEMANTICS_NAMES
    )
    report = CampaignReport(
        seed=seed, budget=budget, engines=engines, semantics=semantics
    )
    start = time.monotonic()
    rng = random.Random(seed)

    if corpus_dir is not None:
        replayed, replay_findings = replay_corpus(corpus_dir, engines=engines)
        report.corpus_replayed = replayed
        report.findings.extend(replay_findings)

    iteration = 0
    while iteration < budget:
        if time_budget is not None and time.monotonic() - start > time_budget:
            report.stopped_by = "time"
            break
        family, graph = _draw_family(iteration, rng, max_classes)
        report.families[family] = report.families.get(family, 0) + 1

        mutation_names: list[str] = []
        if rng.random() < mutation_probability:
            for _ in range(rng.randint(1, 2)):
                applied = mutate(graph, rng)
                if applied is None:
                    break
                mutated, mutation = applied
                report.invariant_checks += 1
                violations = _check_mutation_invariant(graph, mutated, mutation)
                for violation in violations:
                    report.findings.append(
                        Finding(
                            iteration=iteration,
                            engine="table",
                            kind="invariant",
                            family=family,
                            detail=f"{mutation.describe()}: {violation}",
                            mutations=tuple(mutation_names + [mutation.name]),
                        )
                    )
                mutation_names.append(mutation.name)
                report.mutations[mutation.name] = (
                    report.mutations.get(mutation.name, 0) + 1
                )
                graph = mutated

        certify_engine = engines[iteration % len(engines)]
        divergences, queries, certificates = differential_check(
            graph, engines=engines, certify_engine=certify_engine
        )
        report.queries_checked += queries
        report.certificates_checked += certificates
        for divergence in divergences:
            report.findings.append(
                _finding_for(
                    divergence,
                    graph,
                    iteration=iteration,
                    family=family,
                    mutations=tuple(mutation_names),
                    corpus_dir=corpus_dir,
                    seed=seed,
                    shrink=shrink,
                )
            )

        if iteration % 5 == 0:
            ran, roundtrip_divergences = _roundtrip_check(graph)
            if ran:
                report.roundtrips += 1
            for divergence in roundtrip_divergences:
                report.findings.append(
                    Finding(
                        iteration=iteration,
                        engine=divergence.engine,
                        kind=divergence.kind,
                        family=family,
                        detail=divergence.detail,
                        mutations=tuple(mutation_names),
                    )
                )

        if iteration % 5 == 1:
            storm_mutations, storm_divergences, checked = _delta_storm_check(
                graph, rng, engines
            )
            report.queries_checked += checked
            if storm_mutations:
                report.delta_storms += 1
            for divergence in storm_divergences:
                report.findings.append(
                    Finding(
                        iteration=iteration,
                        engine=divergence.engine,
                        kind=divergence.kind,
                        family=family,
                        detail=divergence.detail,
                        class_name=divergence.class_name,
                        member=divergence.member,
                        mutations=tuple(storm_mutations),
                    )
                )

        if iteration % 5 == 2:
            publishes, chain_divergences, checked = _snapshot_chain_check(
                graph, rng
            )
            report.queries_checked += checked
            if publishes:
                report.snapshot_chains += 1
            for divergence in chain_divergences:
                report.findings.append(
                    Finding(
                        iteration=iteration,
                        engine=divergence.engine,
                        kind=divergence.kind,
                        family=family,
                        detail=divergence.detail,
                        class_name=divergence.class_name,
                        member=divergence.member,
                        mutations=tuple(mutation_names),
                    )
                )

        if iteration % 5 == 4 and len(semantics) > 1:
            uncatalogued, pairs, catalogued = cross_semantics_check(
                graph, semantics=semantics
            )
            report.cross_semantics_checks += pairs
            report.catalogued_divergences += catalogued
            for divergence in uncatalogued:
                report.findings.append(
                    Finding(
                        iteration=iteration,
                        engine=f"{divergence.left}|{divergence.right}",
                        kind="cross-semantics",
                        family=family,
                        detail=(
                            "uncatalogued divergence: "
                            f"{divergence.describe()}"
                        ),
                        class_name=divergence.class_name,
                        member=divergence.member,
                        mutations=tuple(mutation_names),
                    )
                )

        if iteration % 4 == 3:
            mutation, stale, checked = _stale_cache_check(graph, rng)
            report.queries_checked += checked
            if mutation is not None:
                report.invariant_checks += 1
            for divergence in stale:
                report.findings.append(
                    Finding(
                        iteration=iteration,
                        engine=divergence.engine,
                        kind=divergence.kind,
                        family=family,
                        detail=divergence.detail,
                        class_name=divergence.class_name,
                        member=divergence.member,
                        mutations=tuple(mutation_names),
                    )
                )
        iteration += 1

    report.iterations = iteration
    report.elapsed = time.monotonic() - start
    return report


def _finding_for(
    divergence: Divergence,
    graph: ClassHierarchyGraph,
    *,
    iteration: int,
    family: str,
    mutations: tuple[str, ...],
    corpus_dir: Optional[Path | str],
    seed: int,
    shrink: bool,
) -> Finding:
    """Turn a divergence into a report finding: shrink the hierarchy to
    a minimal counterexample and persist it to the corpus."""
    finding = Finding(
        iteration=iteration,
        engine=divergence.engine,
        kind=divergence.kind,
        family=family,
        detail=divergence.detail,
        class_name=divergence.class_name,
        member=divergence.member,
        mutations=mutations,
    )
    if not shrink:
        return finding

    def still_fails(candidate: ClassHierarchyGraph) -> bool:
        found, _queries, _certs = differential_check(
            candidate,
            engines=(divergence.engine,),
            certify_engine=(
                divergence.engine if divergence.kind == "certificate" else None
            ),
        )
        return bool(found)

    result = shrink_hierarchy(graph, still_fails, max_attempts=2_000)
    finding.original_classes = result.initial_classes
    finding.shrunk_classes = result.final_classes
    finding.shrink_attempts = result.attempts
    finding.shrunk_hierarchy = hierarchy_to_dict(result.graph)
    if corpus_dir is not None:
        entry = CorpusEntry(
            name=f"{divergence.engine}-{divergence.kind}-seed{seed}-i{iteration}",
            description=(
                f"{divergence.engine} {divergence.kind} found by campaign "
                f"(family {family}): {divergence.detail}"
            ),
            hierarchy=result.graph,
            origin=f"campaign seed={seed} iteration={iteration}",
            meta={
                "family": family,
                "mutations": list(mutations),
                "shrink": result.describe(),
            },
        )
        finding.corpus_path = str(save_entry(corpus_dir, entry))
    return finding
