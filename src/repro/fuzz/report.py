"""Campaign reports: what was fuzzed, what was compared, what diverged.

A :class:`CampaignReport` is the single artifact a differential campaign
produces: iteration/coverage counters, the engine matrix that was
compared, every :class:`Finding` (with its shrunk counterexample when
the shrinker ran), and a stable JSON form — CI uploads it, the nightly
job archives it, and the tests assert on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Finding:
    """One divergence discovered by a campaign (or a corpus replay).

    ``kind`` classifies the failure:

    * ``"mismatch"`` — an engine answered differently from the
      subobject-poset oracle (:class:`~repro.subobjects.reference.ReferenceLookup`);
    * ``"exception"`` — an engine raised while answering a query;
    * ``"build-error"`` — an engine could not even be constructed;
    * ``"certificate"`` — :func:`repro.core.certify.certify` rejected an
      engine's result;
    * ``"invariant"`` — a metamorphic mutator's paper-derived invariant
      was violated by the lookup table;
    * ``"stale-cache"`` — the generation-keyed cache served a row that
      does not match the post-mutation hierarchy;
    * ``"delta-storm"`` — a table maintained through
      :meth:`~repro.core.lookup.MemberLookupTable.apply_delta` across a
      burst of mutations disagrees with a from-scratch rebuild or the
      oracle;
    * ``"cross-semantics"`` — two dispatch semantics disagreed in a way
      the divergence catalog (:mod:`repro.fuzz.cross_semantics`) does
      not document (``engine`` carries the pair as ``"left|right"``);
    * ``"replay"`` — a persisted corpus entry no longer replays clean;
    * ``"roundtrip"`` — a hierarchy emitted as C++ source
      (:func:`repro.workloads.emit_cpp`) did not analyse back to the
      identical graph (or the frontend diagnosed errors on it).
    """

    iteration: int
    engine: str
    kind: str
    family: str
    detail: str
    class_name: Optional[str] = None
    member: Optional[str] = None
    mutations: tuple[str, ...] = ()
    original_classes: Optional[int] = None
    shrunk_classes: Optional[int] = None
    shrink_attempts: Optional[int] = None
    shrunk_hierarchy: Optional[dict] = None
    corpus_path: Optional[str] = None

    @property
    def shrink_ratio(self) -> Optional[float]:
        """Final/initial class count of the shrink (1.0 = no reduction;
        ``None`` when the shrinker did not run on this finding)."""
        if not self.original_classes or self.shrunk_classes is None:
            return None
        return self.shrunk_classes / self.original_classes

    def to_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "engine": self.engine,
            "kind": self.kind,
            "family": self.family,
            "class": self.class_name,
            "member": self.member,
            "detail": self.detail,
            "mutations": list(self.mutations),
            "original_classes": self.original_classes,
            "shrunk_classes": self.shrunk_classes,
            "shrink_ratio": self.shrink_ratio,
            "shrink_attempts": self.shrink_attempts,
            "shrunk_hierarchy": self.shrunk_hierarchy,
            "corpus_path": self.corpus_path,
        }


@dataclass
class CampaignReport:
    """The full outcome of one differential fuzzing campaign."""

    seed: int
    budget: int
    engines: tuple[str, ...]
    semantics: tuple[str, ...] = ()
    iterations: int = 0
    elapsed: float = 0.0
    stopped_by: str = "budget"  # "budget" | "time"
    queries_checked: int = 0
    certificates_checked: int = 0
    invariant_checks: int = 0
    delta_storms: int = 0
    snapshot_chains: int = 0
    cross_semantics_checks: int = 0
    catalogued_divergences: int = 0
    roundtrips: int = 0
    corpus_replayed: int = 0
    families: dict[str, int] = field(default_factory=dict)
    mutations: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    @property
    def disagreements(self) -> int:
        return len(self.findings)

    @property
    def exit_code(self) -> int:
        """Process exit code the CLI propagates: nonzero iff any engine
        diverged (or a corpus entry failed to replay)."""
        return 1 if self.findings else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-fuzz-report",
            "version": 1,
            "seed": self.seed,
            "budget": self.budget,
            "engines": list(self.engines),
            "semantics": list(self.semantics),
            "iterations": self.iterations,
            "elapsed_seconds": round(self.elapsed, 3),
            "stopped_by": self.stopped_by,
            "queries_checked": self.queries_checked,
            "certificates_checked": self.certificates_checked,
            "invariant_checks": self.invariant_checks,
            "delta_storms": self.delta_storms,
            "snapshot_chains": self.snapshot_chains,
            "cross_semantics_checks": self.cross_semantics_checks,
            "catalogued_divergences": self.catalogued_divergences,
            "roundtrips": self.roundtrips,
            "corpus_replayed": self.corpus_replayed,
            "families": dict(sorted(self.families.items())),
            "mutations": dict(sorted(self.mutations.items())),
            "disagreements": self.disagreements,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable campaign summary (what the CLI prints)."""
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget} "
            f"iterations={self.iterations} ({self.stopped_by} exhausted) "
            f"in {self.elapsed:.1f}s",
            f"  engines: {', '.join(self.engines)}",
            f"  queries cross-checked against the subobject-poset oracle: "
            f"{self.queries_checked}",
            f"  results certified (translation validation): "
            f"{self.certificates_checked}",
            f"  metamorphic invariant checks: {self.invariant_checks}",
        ]
        if self.delta_storms:
            lines.append(
                f"  delta storms absorbed via apply_delta: "
                f"{self.delta_storms}"
            )
        if self.snapshot_chains:
            lines.append(
                f"  snapshot chains stormed (publish/retire): "
                f"{self.snapshot_chains}"
            )
        if self.cross_semantics_checks:
            lines.append(
                f"  cross-semantics pairs diffed: "
                f"{self.cross_semantics_checks} "
                f"({', '.join(self.semantics)}); "
                f"catalogued divergences: {self.catalogued_divergences}"
            )
        if self.roundtrips:
            lines.append(
                f"  emit_cpp round-trips verified: {self.roundtrips}"
            )
        if self.corpus_replayed:
            lines.append(f"  corpus entries replayed: {self.corpus_replayed}")
        if self.families:
            drawn = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.families.items())
            )
            lines.append(f"  families drawn: {drawn}")
        if self.mutations:
            applied = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.mutations.items())
            )
            lines.append(f"  mutations applied: {applied}")
        if not self.findings:
            lines.append("  disagreements: none — all engines agree")
            return "\n".join(lines)
        lines.append(f"  DISAGREEMENTS: {self.disagreements}")
        for finding in self.findings:
            query = (
                f" on {finding.class_name}::{finding.member}"
                if finding.class_name is not None
                else ""
            )
            shrink = ""
            if finding.shrunk_classes is not None:
                shrink = (
                    f" [shrunk {finding.original_classes} -> "
                    f"{finding.shrunk_classes} classes]"
                )
            corpus = (
                f" -> {finding.corpus_path}" if finding.corpus_path else ""
            )
            lines.append(
                f"    #{finding.iteration} {finding.engine} "
                f"({finding.kind}, {finding.family}){query}: "
                f"{finding.detail}{shrink}{corpus}"
            )
        return "\n".join(lines)
