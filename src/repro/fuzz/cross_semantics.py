"""Pairwise differential testing across dispatch semantics.

The six registered semantics (:mod:`repro.core.semantics`) answer the
same queries over the same compiled hierarchies, but they *mean*
different things — C++ dominance is subobject-sensitive, C3/topo are
linearization rules, Eiffel rejects origin clashes outright.  A naive
pairwise diff would therefore drown in expected noise.  This module
ships the **divergence catalog**: a machine-readable list of the
*documented* ways two semantics may legitimately disagree, each entry
with a predicate over the observed disagreement and a ``witness()``
factory producing a concrete hierarchy that exhibits it (so the catalog
itself is regression-tested and cannot rot — see
``tests/fuzz/test_cross_semantics.py``).

:func:`cross_semantics_check` diffs every semantics pair over a
hierarchy's full query surface and returns only the *uncatalogued*
divergences — which the fuzz campaign (:mod:`repro.fuzz.campaign`)
turns into findings.  Outcomes are compared class-level: two results
agree iff they have the same status and, for unique results, the same
declaring class (ambiguous-vs-ambiguous always agrees — the candidate
*sets* are semantics-specific vocabulary).  A
:class:`~repro.core.semantics.SemanticsRejection` is a hierarchy-level
outcome of its own: rejection-vs-acceptance is one divergence per pair,
anchored at the rejecting class.

The catalog's soundness leans on invariants provable from the rules
themselves (and pinned by the conformance tests):

* ``NOT_FOUND`` is universal — every semantics computes visibility from
  the same ``visible_masks``, so found-vs-not-found never diverges.
* g++-BFS ``UNIQUE`` implies dominance ``UNIQUE`` with the same
  declarer (the BFS winner dominates everything it beat), so a gxx
  unique answer never disagrees with a cpp unique answer.
* dominance ``UNIQUE`` (and self ``UNIQUE``) imply C3 and topo-number
  agree with the same declarer, so unique-vs-unique disagreements only
  occur among the linearization-style rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.core.lookup import build_lookup_table
from repro.core.results import LookupResult
from repro.core.semantics import SEMANTICS_NAMES, SemanticsRejection
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.workloads import ambiguous_fan, nonvirtual_diamond_ladder
from repro.workloads.paper_figures import figure1, figure9

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "PairDivergence",
    "REJECTED",
    "catalog_entry_for",
    "cross_semantics_check",
    "cross_semantics_divergences",
    "semantics_outcomes",
]

#: The hierarchy-level outcome of a semantics that rejected the whole
#: hierarchy (:class:`~repro.core.semantics.SemanticsRejection`).
REJECTED = ("rejected",)

#: Class-level (subobject-blind) semantics: one answer per *class*, so
#: duplicated subobjects of one declaring class cannot ambiguate them.
_CLASS_LEVEL = ("c3", "eiffel", "self", "topo-number")

#: Subobject-sensitive semantics: distinct subobjects of the same
#: declaring class are distinct candidates.
_SUBOBJECT_LEVEL = ("cpp-dominance", "gxx-bfs")


def _outcome(result: LookupResult) -> tuple:
    """The comparable shape of one query's answer: status plus the
    declaring class for unique results.  Ambiguity candidate sets are
    carried for the catalog predicates but excluded from equality."""
    if result.is_unique:
        return ("unique", result.declaring_class)
    if result.is_ambiguous:
        return ("ambiguous", frozenset(result.candidates or ()))
    return ("not-found",)


def _differs(left: tuple, right: tuple) -> bool:
    """Class-level disagreement: status, and declarer when unique."""
    if left[0] != right[0]:
        return True
    return left[0] == "unique" and left[1] != right[1]


@dataclass(frozen=True)
class PairDivergence:
    """One observed disagreement between two semantics.

    Query-level divergences carry the ``(class_name, member)`` they
    disagreed on; rejection-level divergences (one side rejected the
    whole hierarchy) anchor at the rejecting class with ``member=None``.
    ``outcomes`` maps *every* campaign semantics to its outcome for the
    same query (or :data:`REJECTED`), so catalog predicates can consult
    third parties — e.g. "gxx is prematurely ambiguous only where
    dominance is unique"."""

    left: str
    right: str
    left_outcome: tuple
    right_outcome: tuple
    class_name: Optional[str] = None
    member: Optional[str] = None
    outcomes: Mapping[str, tuple] = field(default_factory=dict)

    def swapped(self) -> "PairDivergence":
        return PairDivergence(
            left=self.right,
            right=self.left,
            left_outcome=self.right_outcome,
            right_outcome=self.left_outcome,
            class_name=self.class_name,
            member=self.member,
            outcomes=self.outcomes,
        )

    def describe(self) -> str:
        where = (
            f"{self.class_name}::{self.member}"
            if self.member is not None
            else f"class {self.class_name!r}"
        )
        return (
            f"{self.left}={_render(self.left_outcome)} vs "
            f"{self.right}={_render(self.right_outcome)} on {where}"
        )


def _render(outcome: tuple) -> str:
    if outcome[0] == "unique":
        return f"unique({outcome[1]})"
    if outcome[0] == "ambiguous":
        return f"ambiguous({{{', '.join(sorted(outcome[1]))}}})"
    return outcome[0]


@dataclass(frozen=True)
class CatalogEntry:
    """One documented way two semantics may legitimately disagree.

    ``applies`` is tried in both argument orders by
    :func:`catalog_entry_for`, so predicates may assume a fixed
    orientation.  ``witness`` builds a hierarchy on which the entry is
    the *first* matching catalog entry for at least one pair — the
    witness test replays every factory, so a predicate that stops
    matching its own witness fails CI instead of silently rotting."""

    name: str
    description: str
    applies: Callable[[PairDivergence], bool]
    witness: Callable[[], ClassHierarchyGraph]


def _vector_not_unique(d: PairDivergence) -> bool:
    """True when some subobject-sensitive semantics in the campaign saw
    the query as ambiguous/rejected (vacuously true when none ran)."""
    seen = [
        d.outcomes[name]
        for name in _SUBOBJECT_LEVEL
        if name in d.outcomes
    ]
    return not seen or any(o[0] in ("ambiguous", "rejected") for o in seen)


def _c3_order_clash() -> ClassHierarchyGraph:
    """X and Y inherit (A, B) in opposite orders; Z joins them.  C3
    cannot serialize the local precedence orders; every other semantics
    is untroubled (only A declares ``m``, so Eiffel sees one origin)."""
    g = ClassHierarchyGraph()
    g.add_class("A", members=["m"])
    g.add_class("B")
    g.add_class("X")
    g.add_edge("A", "X")
    g.add_edge("B", "X")
    g.add_class("Y")
    g.add_edge("B", "Y")
    g.add_edge("A", "Y")
    g.add_class("Z")
    g.add_edge("X", "Z")
    g.add_edge("Y", "Z")
    return g


CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        name="c3-rejection",
        description=(
            "C3 refuses hierarchies whose local precedence orders "
            "cannot be merged into one MRO; every other semantics "
            "accepts them (C++ accepts any acyclic CHG)."
        ),
        applies=lambda d: (
            d.left == "c3"
            and d.left_outcome == REJECTED
            and d.right_outcome != REJECTED
        ),
        witness=_c3_order_clash,
    ),
    CatalogEntry(
        name="eiffel-rejection",
        description=(
            "Eiffel statically rejects a class inheriting features of "
            "the same name from distinct origins (a rename clause "
            "would be required); the other semantics answer the query "
            "(ambiguously or via their tie-break) instead."
        ),
        applies=lambda d: (
            d.left == "eiffel"
            and d.left_outcome == REJECTED
            and d.right_outcome != REJECTED
        ),
        witness=lambda: ambiguous_fan(2),
    ),
    CatalogEntry(
        name="gxx-premature-ambiguity",
        description=(
            "The historical g++ BFS bails out on the first "
            "non-comparable pair it meets, declaring ambiguity where "
            "full dominance resolution finds a unique winner — the "
            "paper's Figure 9 counterexample."
        ),
        applies=lambda d: (
            d.left == "gxx-bfs"
            and d.left_outcome[0] == "ambiguous"
            and d.right_outcome[0] == "unique"
            and d.outcomes.get("cpp-dominance", ("unique",))[0] == "unique"
        ),
        witness=figure9,
    ),
    CatalogEntry(
        name="dominance-blind",
        description=(
            "Self-style lookup unions visible declarations without a "
            "dominance relation, so it reports ambiguity where a "
            "dominated declaration should have been disqualified; the "
            "unique side's declarer is among self's candidates."
        ),
        applies=lambda d: (
            d.left == "self"
            and d.left_outcome[0] == "ambiguous"
            and d.right_outcome[0] == "unique"
            and d.right_outcome[1] in d.left_outcome[1]
        ),
        witness=figure9,
    ),
    CatalogEntry(
        name="class-blind-duplication",
        description=(
            "Subobject-sensitive semantics (dominance, g++ BFS) see "
            "repeated non-virtual subobjects of one declaring class as "
            "distinct ambiguous candidates; class-level semantics "
            "collapse them into one answer.  Signature: self is unique "
            "on the same query."
        ),
        applies=lambda d: (
            d.left in _SUBOBJECT_LEVEL
            and d.left_outcome[0] == "ambiguous"
            and d.right in _CLASS_LEVEL
            and d.right_outcome[0] == "unique"
            and d.outcomes.get("self", ("unique",))[0] == "unique"
        ),
        witness=lambda: nonvirtual_diamond_ladder(1),
    ),
    CatalogEntry(
        name="linearization-resolves-ambiguity",
        description=(
            "C3 totally orders the ancestors, so its MRO walk always "
            "elects a single declarer where dominance (or another "
            "rule) reports a genuine ambiguity."
        ),
        applies=lambda d: (
            d.left == "c3"
            and d.left_outcome[0] == "unique"
            and d.right_outcome[0] == "ambiguous"
        ),
        witness=figure1,
    ),
    CatalogEntry(
        name="topo-resolves-ambiguity",
        description=(
            "Topological numbering always elects the declarer with "
            "the highest topo number, so it answers uniquely where "
            "dominance (or another rule) is ambiguous."
        ),
        applies=lambda d: (
            d.left == "topo-number"
            and d.left_outcome[0] == "unique"
            and d.right_outcome[0] == "ambiguous"
        ),
        witness=figure1,
    ),
    CatalogEntry(
        name="ambiguity-resolution-disagreement",
        description=(
            "Two tie-breaking semantics (C3 / topo-number / Eiffel) "
            "resolve the same clash to different declarers — expected "
            "whenever some subobject-sensitive semantics deems the "
            "query ambiguous (C3 follows local precedence order, topo "
            "numbering follows global declaration order)."
        ),
        applies=lambda d: (
            d.left_outcome[0] == "unique"
            and d.right_outcome[0] == "unique"
            and d.left_outcome[1] != d.right_outcome[1]
            and d.left in ("c3", "topo-number", "eiffel")
            and d.right in ("c3", "topo-number", "eiffel")
            and _vector_not_unique(d)
        ),
        witness=lambda: ambiguous_fan(2),
    ),
)


def catalog_entry_for(
    divergence: PairDivergence,
) -> Optional[CatalogEntry]:
    """The first catalog entry covering ``divergence`` (its predicate
    is tried in both orientations), or ``None`` — an uncatalogued
    divergence, which the campaign treats as a finding."""
    swapped = divergence.swapped()
    for entry in CATALOG:
        if entry.applies(divergence) or entry.applies(swapped):
            return entry
    return None


def semantics_outcomes(
    graph: ClassHierarchyGraph,
    *,
    semantics: Optional[Sequence[str]] = None,
) -> tuple[dict[str, dict], dict[str, SemanticsRejection]]:
    """Build ``graph`` under every requested semantics.

    Returns ``(outcomes, rejections)``: per accepted semantics a map
    ``(class, member) -> outcome`` over the full declared-member query
    surface, and per rejecting semantics the
    :class:`~repro.core.semantics.SemanticsRejection` it raised."""
    names = tuple(semantics) if semantics else SEMANTICS_NAMES
    outcomes: dict[str, dict] = {}
    rejections: dict[str, SemanticsRejection] = {}
    members = graph.member_names()
    for name in names:
        try:
            table = build_lookup_table(
                graph, mode="batched", semantics=name, columnar=False
            )
        except SemanticsRejection as exc:
            rejections[name] = exc
            continue
        per_query: dict[tuple[str, str], tuple] = {}
        for class_name in graph.classes:
            for member in members:
                per_query[(class_name, member)] = _outcome(
                    table.lookup(class_name, member)
                )
        outcomes[name] = per_query
    return outcomes, rejections


def cross_semantics_divergences(
    graph: ClassHierarchyGraph,
    *,
    semantics: Optional[Sequence[str]] = None,
) -> list[tuple[PairDivergence, Optional[CatalogEntry]]]:
    """Every pairwise disagreement over ``graph``, each attributed to
    its covering catalog entry (``None`` = uncatalogued).

    Rejection-vs-acceptance yields one divergence per pair; accepted
    pairs are diffed query-by-query over the full surface."""
    names = tuple(semantics) if semantics else SEMANTICS_NAMES
    outcomes, rejections = semantics_outcomes(graph, semantics=names)
    results: list[tuple[PairDivergence, Optional[CatalogEntry]]] = []
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            left_rejected = left in rejections
            right_rejected = right in rejections
            if left_rejected and right_rejected:
                continue
            if left_rejected or right_rejected:
                exc = rejections[left if left_rejected else right]
                hierarchy_level = {
                    name: REJECTED if name in rejections else ("accepted",)
                    for name in names
                }
                divergence = PairDivergence(
                    left=left,
                    right=right,
                    left_outcome=(
                        REJECTED if left_rejected else ("accepted",)
                    ),
                    right_outcome=(
                        REJECTED if right_rejected else ("accepted",)
                    ),
                    class_name=exc.class_name,
                    member=None,
                    outcomes=hierarchy_level,
                )
                results.append(
                    (divergence, catalog_entry_for(divergence))
                )
                continue
            left_rows = outcomes[left]
            right_rows = outcomes[right]
            for key, left_outcome in left_rows.items():
                right_outcome = right_rows[key]
                if not _differs(left_outcome, right_outcome):
                    continue
                per_query = {
                    name: (
                        REJECTED
                        if name in rejections
                        else outcomes[name][key]
                    )
                    for name in names
                }
                divergence = PairDivergence(
                    left=left,
                    right=right,
                    left_outcome=left_outcome,
                    right_outcome=right_outcome,
                    class_name=key[0],
                    member=key[1],
                    outcomes=per_query,
                )
                results.append(
                    (divergence, catalog_entry_for(divergence))
                )
    return results


def cross_semantics_check(
    graph: ClassHierarchyGraph,
    *,
    semantics: Optional[Sequence[str]] = None,
) -> tuple[list[PairDivergence], int, int]:
    """The campaign leg: diff all semantics pairs over ``graph``.

    Returns ``(uncatalogued, pairs_compared, catalogued_count)`` —
    only the uncatalogued divergences are failures."""
    names = tuple(semantics) if semantics else SEMANTICS_NAMES
    attributed = cross_semantics_divergences(graph, semantics=names)
    uncatalogued = [d for d, entry in attributed if entry is None]
    catalogued = sum(1 for _d, entry in attributed if entry is not None)
    pairs = len(names) * (len(names) - 1) // 2
    return uncatalogued, pairs, catalogued
