"""Delta-debugging of failing hierarchies to minimal counterexamples.

Given a hierarchy on which some predicate fails (an engine disagrees
with the subobject-poset oracle, a certificate is rejected, ...), shrink
it by greedily deleting classes, then inheritance edges, then member
declarations — keeping a deletion only when the reduced hierarchy still
fails — and repeating the three passes to a fixpoint.  Greedy one-at-a-
time removal (ddmin with granularity 1) is enough here because the
failure predicates are cheap to evaluate and hierarchies are small; the
result is *1-minimal*: no single further deletion preserves the failure.

Deleting a class drops every edge incident to it, so a counterexample
shrinks from dozens of classes to the handful that actually interact —
the paper's Figure 9 (the g++ counterexample) is the canonical shape a
shrink converges to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.hierarchy.graph import ClassHierarchyGraph

__all__ = ["ShrinkResult", "shrink_hierarchy"]


@dataclass
class ShrinkResult:
    """The outcome of shrinking one failing hierarchy."""

    graph: ClassHierarchyGraph
    attempts: int
    removed_classes: int
    removed_edges: int
    removed_members: int
    initial_classes: int
    initial_edges: int

    @property
    def final_classes(self) -> int:
        """Class count of the shrunk hierarchy."""
        return len(self.graph.classes)

    @property
    def final_edges(self) -> int:
        """Edge count of the shrunk hierarchy."""
        return self.graph.edge_count()

    @property
    def ratio(self) -> float:
        """Final/initial class count (1.0 = nothing could be removed)."""
        if self.initial_classes == 0:
            return 1.0
        return self.final_classes / self.initial_classes

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"shrunk {self.initial_classes} -> {self.final_classes} classes, "
            f"{self.initial_edges} -> {self.final_edges} edges "
            f"({self.attempts} predicate evaluations)"
        )


def _rebuild(
    graph: ClassHierarchyGraph,
    *,
    drop_class: Optional[str] = None,
    drop_edge: Optional[tuple[str, str]] = None,
    drop_member: Optional[tuple[str, str]] = None,
) -> ClassHierarchyGraph:
    """A copy of ``graph`` with one class (and its incident edges), one
    edge, or one member declaration removed."""
    reduced = ClassHierarchyGraph()
    for name in graph.classes:
        if name == drop_class:
            continue
        members = [
            member
            for member in graph.declared_members(name).values()
            if (name, member.name) != drop_member
        ]
        reduced.add_class(name, members, is_struct=graph.is_struct(name))
    # Edges second: base classes may be declared after their derived
    # class (mutated hierarchies), so classes must all exist first.
    for edge in graph.edges:
        if drop_class in (edge.base, edge.derived):
            continue
        if (edge.base, edge.derived) == drop_edge:
            continue
        reduced.add_edge(
            edge.base, edge.derived, virtual=edge.virtual, access=edge.access
        )
    return reduced


def shrink_hierarchy(
    graph: ClassHierarchyGraph,
    still_fails: Callable[[ClassHierarchyGraph], bool],
    *,
    max_attempts: int = 10_000,
) -> ShrinkResult:
    """Greedily minimise ``graph`` while ``still_fails`` holds.

    ``still_fails`` must return True on ``graph`` itself for shrinking to
    start — otherwise the hierarchy is returned untouched (a no-op shrink
    with one predicate evaluation and zero removals).  The predicate must
    tolerate arbitrary sub-hierarchies, including empty ones; it should
    re-run the *same* failure check that flagged the original (e.g. "this
    engine still disagrees with the oracle somewhere"), not compare
    against remembered query results, since class removal legitimately
    changes answers.

    ``max_attempts`` bounds total predicate evaluations as a safety net;
    the greedy passes normally converge in O(classes + edges + members)
    evaluations per round and a few rounds.
    """
    attempts = 1
    if not still_fails(graph):
        return ShrinkResult(
            graph=graph,
            attempts=attempts,
            removed_classes=0,
            removed_edges=0,
            removed_members=0,
            initial_classes=len(graph.classes),
            initial_edges=graph.edge_count(),
        )

    initial_classes = len(graph.classes)
    initial_edges = graph.edge_count()
    removed = {"class": 0, "edge": 0, "member": 0}
    current = graph

    def try_candidate(candidate: ClassHierarchyGraph) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        try:
            candidate.validate()
        except Exception:
            return False  # reduction produced an invalid hierarchy; skip
        try:
            return bool(still_fails(candidate))
        except Exception:
            # A predicate crash on a reduced input is not the original
            # failure; treat as "does not fail" and keep shrinking.
            return False

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        # Pass 1: classes (each removal also drops incident edges).
        for name in list(current.classes):
            if name not in current:  # removed earlier in this pass
                continue
            candidate = _rebuild(current, drop_class=name)
            if try_candidate(candidate):
                current = candidate
                removed["class"] += 1
                progress = True
        # Pass 2: individual inheritance edges.
        for edge in list(current.edges):
            if not current.has_edge(edge.base, edge.derived):
                continue
            candidate = _rebuild(current, drop_edge=(edge.base, edge.derived))
            if try_candidate(candidate):
                current = candidate
                removed["edge"] += 1
                progress = True
        # Pass 3: member declarations.
        for class_name in list(current.classes):
            for member_name in list(current.declared_members(class_name)):
                candidate = _rebuild(
                    current, drop_member=(class_name, member_name)
                )
                if try_candidate(candidate):
                    current = candidate
                    removed["member"] += 1
                    progress = True

    return ShrinkResult(
        graph=current,
        attempts=attempts,
        removed_classes=removed["class"],
        removed_edges=removed["edge"],
        removed_members=removed["member"],
        initial_classes=initial_classes,
        initial_edges=initial_edges,
    )
