"""Differential fuzzing of the lookup engines, end to end.

Seeded campaigns (:mod:`repro.fuzz.campaign`) draw hierarchies from the
generator families and the paper's adversarial shapes, perturb them with
metamorphic mutators carrying paper-derived invariants
(:mod:`repro.fuzz.mutators`), run the full query surface through every
engine/build mode, and cross-check each answer against the
subobject-poset oracle plus :func:`~repro.core.certify.certify`.
Failures are delta-debugged to minimal counterexamples
(:mod:`repro.fuzz.shrink`), persisted to the regression corpus
(:mod:`repro.fuzz.corpus`), and summarised in a JSON report
(:mod:`repro.fuzz.report`).  CLI: ``repro fuzz``.
"""

from repro.fuzz.campaign import (
    ENGINES,
    Divergence,
    build_engine,
    differential_check,
    run_campaign,
)
from repro.fuzz.cross_semantics import (
    CATALOG,
    CatalogEntry,
    PairDivergence,
    catalog_entry_for,
    cross_semantics_check,
    cross_semantics_divergences,
    semantics_outcomes,
)
from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    CORPUS_VERSION,
    CorpusEntry,
    entry_from_dict,
    entry_to_dict,
    iter_corpus,
    load_entry,
    replay_corpus,
    save_entry,
)
from repro.fuzz.mutators import (
    MUTATORS,
    AppliedMutation,
    Mutator,
    copy_hierarchy,
    mutate,
)
from repro.fuzz.report import CampaignReport, Finding
from repro.fuzz.shrink import ShrinkResult, shrink_hierarchy

__all__ = [
    "CATALOG",
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "AppliedMutation",
    "CampaignReport",
    "CatalogEntry",
    "CorpusEntry",
    "Divergence",
    "ENGINES",
    "Finding",
    "MUTATORS",
    "Mutator",
    "PairDivergence",
    "ShrinkResult",
    "build_engine",
    "catalog_entry_for",
    "copy_hierarchy",
    "cross_semantics_check",
    "cross_semantics_divergences",
    "differential_check",
    "entry_from_dict",
    "entry_to_dict",
    "iter_corpus",
    "load_entry",
    "mutate",
    "replay_corpus",
    "run_campaign",
    "save_entry",
    "semantics_outcomes",
    "shrink_hierarchy",
]
