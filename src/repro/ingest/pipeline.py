"""The streaming ingestion pipeline.

``StreamingIngest`` couples the frontend's streaming parser
(:meth:`repro.frontend.Parser.iter_declarations`) to the O(delta)
maintenance machinery: every completed ``ClassDecl`` is lowered into a
*live* :class:`~repro.hierarchy.graph.ClassHierarchyGraph` by an
:class:`~repro.frontend.sema.IncrementalSema`, and every ``batch_size``
classes the pipeline publishes one ``apply_delta`` — a cone-restricted
re-sweep plus an atomic snapshot swap — so a served table is current
and queryable *while* later files are still being parsed.

Contrast with :func:`rebuild_baseline`, the pre-delta shape of the same
job (parse a whole file, lower it, rebuild the entire ``|N| × |M|``
table from scratch, repeat): the streaming path's per-batch cost tracks
the invalidation cone of the new classes, not the accumulated
hierarchy, which is where the ≥2× end-to-end win on multi-thousand
class corpora comes from (``BENCH_ingest.json``).

Files are parsed in order with one shared ``known_classes`` set, so a
class in ``widgets.h`` can derive from a namespace-qualified base
defined in ``core.h`` without any ``#include`` machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.core.lookup import MemberLookupTable
from repro.frontend.cpp_ast import ClassDecl
from repro.frontend.errors import DiagnosticBag, ParseError
from repro.frontend.parser import Parser
from repro.frontend.sema import IncrementalSema
from repro.hierarchy.graph import ClassHierarchyGraph

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchRecord",
    "IngestReport",
    "StreamingIngest",
    "ingest_paths",
    "rebuild_baseline",
]

DEFAULT_BATCH_SIZE = 128


@dataclass(frozen=True)
class BatchRecord:
    """One published batch: how much arrived, what the delta cost."""

    index: int
    classes: int
    generation: int
    cone_classes: int
    affected_members: int
    entries_recomputed: int
    entries_reused: int
    full_rebuilds: int
    elapsed_s: float


@dataclass
class IngestReport:
    """The outcome of one ingestion run."""

    files: list[str] = field(default_factory=list)
    classes: int = 0
    batches: list[BatchRecord] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def generation(self) -> int:
        """Table generation after the last publish (0 if none)."""
        return self.batches[-1].generation if self.batches else 0

    def to_dict(self) -> dict:
        return {
            "files": list(self.files),
            "classes": self.classes,
            "batches": [vars(b) | {} for b in self.batches],
            "parse_errors": list(self.parse_errors),
            "elapsed_s": self.elapsed_s,
        }


class StreamingIngest:
    """Parse → lower → ``apply_delta``, one batch at a time.

    Build one over a fresh (or existing) table, feed it sources with
    :meth:`ingest_source` / :meth:`ingest_file`, and the table stays
    current to within ``batch_size`` classes of the parse front; call
    :meth:`flush` to publish a final partial batch.  ``on_batch`` (if
    given) observes every published :class:`BatchRecord` — the serve
    tier uses it to bump tenant counters.

    Semantic errors (unknown bases, duplicate members) are collected on
    :attr:`diagnostics` and never stall the stream; *syntax* errors
    abort the offending file with :class:`ParseError` unless
    ``keep_going`` is set, in which case the error is recorded on the
    report and ingestion resumes with the next file (a desynced token
    stream cannot be resumed within the file).
    """

    def __init__(
        self,
        *,
        table: Optional[MemberLookupTable] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        mode: str = "batched",
        semantics=None,
        columnar: bool = True,
        keep_going: bool = False,
        on_batch: Optional[Callable[[BatchRecord], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if table is None:
            table = MemberLookupTable(
                ClassHierarchyGraph(),
                mode=mode,
                fastpath=True,
                columnar=columnar,
                semantics=semantics,
            )
        if table.graph is None:
            raise ValueError(
                "StreamingIngest needs a table over a live source graph"
            )
        self.table = table
        self.sema = IncrementalSema(table.graph)
        self.batch_size = batch_size
        self.keep_going = keep_going
        self.on_batch = on_batch
        self.report = IngestReport()
        # Classes already in the graph resolve as bases for newly
        # parsed files, exactly like classes from earlier files do.
        self.known_classes: set = set(table.graph.classes)
        self._pending = 0

    @property
    def diagnostics(self) -> DiagnosticBag:
        return self.sema.diagnostics

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def ingest_source(
        self, source: str, filename: Optional[str] = None
    ) -> int:
        """Stream one translation unit's classes into the live table.

        Returns the number of classes lowered.  The token stream is
        consumed declaration by declaration: a publish can happen in
        the middle of the file, with the parser suspended."""
        started = self.sema.classes_declared
        parser = Parser(
            source, filename=filename, known_classes=self.known_classes
        )
        if filename is not None:
            self.report.files.append(filename)
        try:
            for decl in parser.iter_declarations():
                if not isinstance(decl, ClassDecl):
                    continue  # free functions don't shape the table
                self.sema.declare(decl)
                self._pending += 1
                if self._pending >= self.batch_size:
                    self.flush()
        except ParseError as exc:
            if not self.keep_going:
                raise
            self.report.parse_errors.append(str(exc))
        lowered = self.sema.classes_declared - started
        self.report.classes += lowered
        return lowered

    def ingest_file(self, path: Union[str, Path]) -> int:
        path = Path(path)
        return self.ingest_source(path.read_text(), filename=str(path))

    def ingest(self, paths: Iterable[Union[str, Path]]) -> IngestReport:
        """Ingest many files in order and flush the final partial
        batch.  Returns the accumulated :class:`IngestReport`."""
        t0 = time.perf_counter()
        for path in paths:
            self.ingest_file(path)
        self.flush()
        self.report.elapsed_s += time.perf_counter() - t0
        return self.report

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def flush(self) -> Optional[BatchRecord]:
        """Publish the pending classes as one ``apply_delta`` batch.

        No-op when nothing is pending.  The publish is atomic for
        readers of the table's snapshot chain: they see the generation
        before the batch or after it, never a torn table."""
        if self._pending == 0:
            return None
        t0 = time.perf_counter()
        stats = self.table.apply_delta()
        elapsed = time.perf_counter() - t0
        snapshot = self.table.snapshot
        record = BatchRecord(
            index=len(self.report.batches),
            classes=self._pending,
            generation=(
                snapshot.generation
                if snapshot is not None
                else self.table.graph.generation
            ),
            cone_classes=stats.cone_classes,
            affected_members=stats.affected_members,
            entries_recomputed=stats.entries_recomputed,
            entries_reused=stats.entries_reused,
            full_rebuilds=stats.full_rebuilds,
            elapsed_s=elapsed,
        )
        self.report.batches.append(record)
        self._pending = 0
        if self.on_batch is not None:
            self.on_batch(record)
        return record


def ingest_paths(
    paths: Iterable[Union[str, Path]],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    mode: str = "batched",
    semantics=None,
    columnar: bool = True,
    keep_going: bool = False,
) -> tuple[MemberLookupTable, IngestReport]:
    """One-shot convenience: stream-ingest ``paths`` into a fresh
    table.  Returns ``(table, report)``."""
    pipeline = StreamingIngest(
        batch_size=batch_size,
        mode=mode,
        semantics=semantics,
        columnar=columnar,
        keep_going=keep_going,
    )
    report = pipeline.ingest(paths)
    return pipeline.table, report


def rebuild_baseline(
    paths: Iterable[Union[str, Path]],
    *,
    mode: str = "batched",
    semantics=None,
    columnar: bool = True,
) -> tuple[MemberLookupTable, int]:
    """The pre-delta shape of ingestion, kept as the benchmark
    baseline: parse each whole file, lower all of it, then rebuild the
    complete table from scratch — per file, as a compiler without
    incremental maintenance would after each header.  Returns the final
    table and the class count."""
    graph = ClassHierarchyGraph()
    sema = IncrementalSema(graph)
    known: set = set()
    table = None
    for path in paths:
        path = Path(path)
        unit = Parser(
            path.read_text(), filename=str(path), known_classes=known
        ).parse()
        for decl in unit.classes():
            sema.declare(decl)
        table = MemberLookupTable(
            graph.compile(),
            mode=mode,
            fastpath=True,
            columnar=columnar,
            semantics=semantics,
        )
    if table is None:
        table = MemberLookupTable(
            graph, mode=mode, columnar=columnar, semantics=semantics
        )
    return table, sema.classes_declared
