"""Streaming ingestion: many C++ translation units in, one live
served lookup table out.

This is the compiler-facing pipeline the paper was written for —
parse large multi-class translation units and bring the member lookup
structures current *as classes arrive*, batch by batch, instead of
parse-everything-then-rebuild.  See :mod:`repro.ingest.pipeline`.
"""

from repro.ingest.pipeline import (
    DEFAULT_BATCH_SIZE,
    BatchRecord,
    IngestReport,
    StreamingIngest,
    ingest_paths,
    rebuild_baseline,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchRecord",
    "IngestReport",
    "StreamingIngest",
    "ingest_paths",
    "rebuild_baseline",
]
