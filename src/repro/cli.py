"""Command-line interface.

``python -m repro <command> <file> ...`` analyses a hierarchy given
either as C++ source (parsed by :mod:`repro.frontend`) or as a
``repro-chg`` JSON dump (see :mod:`repro.hierarchy.serialize`), and
answers lookup queries, prints tables, explains resolutions, slices, or
exports DOT drawings.

Commands:

* ``check``    parse + analyse, print diagnostics (exit 1 on errors)
* ``lookup``   resolve one ``Class::member`` query
* ``table``    print the whole lookup table
* ``build``    build the table, report build + query-cache statistics
* ``explain``  step-by-step dominance explanation of one query
* ``metrics``  structural metrics of the hierarchy
* ``dot``      DOT export of the CHG or of one class's subobject graph
* ``slice``    slice the hierarchy for a set of queries
* ``trace``    Figure 4-7 style propagation trace for one member
* ``diff``     lookup-impact diff between two hierarchy versions
* ``lint``     hierarchy lint: ambiguities, shadowing, fragile patterns
* ``targets``  class-hierarchy analysis of a call site (devirtualisation)
* ``vtables``  per-subobject vtables of one complete type
* ``fuzz``     seeded differential fuzzing campaign over all engines
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.cache import DEFAULT_CACHE_SIZE, CachedMemberLookup
from repro.core.lookup import BUILD_MODES, build_lookup_table
from repro.core.semantics import DEFAULT_SEMANTICS, SEMANTICS_NAMES
from repro.core.static_lookup import StaticAwareLookupTable
from repro.diagnostics.dot import chg_to_dot, subobject_graph_to_dot
from repro.diagnostics.explain import explain_lookup
from repro.diagnostics.trace import render_abstract_trace, render_concrete_trace
from repro.analysis.diff import diff_hierarchies, render_diff
from repro.analysis.cha import analyze_call_targets
from repro.analysis.lint import LintSeverity, lint_hierarchy, render_findings
from repro.errors import ReproError
from repro.frontend.errors import ParseError
from repro.frontend.sema import analyze
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.analysis.metrics import compute_metrics
from repro.hierarchy.serialize import dumps as hierarchy_dumps
from repro.hierarchy.serialize import loads as hierarchy_loads
from repro.layout.vtable import build_vtables
from repro.slicing.slicer import slice_hierarchy
from repro.subobjects.graph import SubobjectGraph


def _load_hierarchy(path: str) -> tuple[ClassHierarchyGraph, list[str]]:
    """Load a hierarchy from C++ source or a JSON dump; returns the graph
    and any diagnostics rendered as strings."""
    text = Path(path).read_text()
    if path.endswith(".json") or text.lstrip().startswith("{"):
        return hierarchy_loads(text), []
    program = analyze(text)
    rendered = [d.render(text) for d in program.diagnostics]
    return program.hierarchy, rendered


def _parse_query(query: str) -> tuple[str, str]:
    if "::" not in query:
        raise argparse.ArgumentTypeError(
            f"query must look like Class::member, got {query!r}"
        )
    class_name, _, member = query.partition("::")
    return class_name, member


def _add_build_mode_options(parser: argparse.ArgumentParser) -> None:
    """The table-construction knobs shared by ``table`` and ``build``."""
    parser.add_argument(
        "--mode",
        choices=BUILD_MODES,
        default="per-member",
        help="table build strategy (default: per-member; 'auto' picks "
        "batched or sharded from the |M|·|E| work estimate)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sharded builder (default: cpu count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="member-space shards for the sharded builder "
        "(default: one per worker)",
    )
    parser.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="serve certified-unambiguous member columns from the flat "
        "fast path (default: on for --mode auto, off for batched/"
        "sharded, rejected for per-member)",
    )
    parser.add_argument(
        "--columnar",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="exercise the dense columnar batch kernel: answer every "
        "visible (class, member) pair through one lookup_many gather "
        "and report its layout/serving counters; --no-columnar disables "
        "the columnar layout entirely (default: built lazily on first "
        "batch query; rejected for per-member mode)",
    )
    parser.add_argument(
        "--delta-stats",
        action="store_true",
        help="replay the hierarchy's last leaf class as a mutation and "
        "report what delta maintenance did (cone size, rows reused vs "
        "recomputed, cache evictions)",
    )
    parser.add_argument(
        "--semantics",
        choices=SEMANTICS_NAMES,
        default=DEFAULT_SEMANTICS,
        help="dispatch rule the table is built under (default: "
        f"{DEFAULT_SEMANTICS}; non-default rules force the batched "
        "mode unless --mode sharded was requested explicitly, which "
        "is rejected)",
    )


def _coerce_semantics_mode(args: argparse.Namespace) -> None:
    """Non-default semantics only run on the batched driver: upgrade
    the per-member/auto defaults silently, leave an explicit sharded
    request to be rejected with the table's own error message."""
    if args.semantics != DEFAULT_SEMANTICS and args.mode in (
        "per-member",
        "auto",
    ):
        args.mode = "batched"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Member lookup for C++ hierarchies "
        "(Ramalingam & Srinivasan, PLDI 1997).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="analyse and print diagnostics")
    check.add_argument("file")

    lookup = commands.add_parser("lookup", help="resolve Class::member")
    lookup.add_argument("file")
    lookup.add_argument("query", type=_parse_query, help="Class::member")
    lookup.add_argument(
        "--no-static-rule",
        action="store_true",
        help="ignore the static-member dominance relaxation",
    )

    table = commands.add_parser("table", help="print the whole lookup table")
    table.add_argument(
        "file",
        nargs="?",
        help="hierarchy source (omit when serving from --load-pack)",
    )
    table.add_argument(
        "--ambiguous-only", action="store_true", help="only ⊥ entries"
    )
    _add_build_mode_options(table)
    table.add_argument(
        "--stats",
        action="store_true",
        help="print the LookupStats counters after the table",
    )
    table.add_argument(
        "--save-pack",
        metavar="PATH",
        help="also write the table as a mmap-servable flatpack file "
        "(snapshot-backed modes only)",
    )
    table.add_argument(
        "--load-pack",
        metavar="PATH",
        help="serve the table from an existing flatpack file instead "
        "of building it (no hierarchy source needed)",
    )

    pack_cmd = commands.add_parser(
        "pack",
        help="build the lookup table and write it as a mmap-servable "
        "flatpack file (open it back with 'table --load-pack' or "
        "'serve --preload')",
    )
    pack_cmd.add_argument("file")
    pack_cmd.add_argument("out", help="flatpack output path")
    pack_cmd.add_argument(
        "--semantics",
        choices=SEMANTICS_NAMES,
        default=DEFAULT_SEMANTICS,
        help=f"dispatch rule to tabulate under (default: {DEFAULT_SEMANTICS})",
    )

    ingest = commands.add_parser(
        "ingest",
        help="stream-ingest C++ source files into one live lookup "
        "table, publishing a snapshot every N classes",
    )
    ingest.add_argument(
        "files", nargs="+", help="C++ source files, ingested in order"
    )
    ingest.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="classes per apply_delta publish (default 128)",
    )
    ingest.add_argument(
        "--semantics",
        choices=SEMANTICS_NAMES,
        default=DEFAULT_SEMANTICS,
        help=f"dispatch rule to tabulate under (default: {DEFAULT_SEMANTICS})",
    )
    ingest.add_argument(
        "--keep-going",
        action="store_true",
        help="on a syntax error, skip to the next file instead of "
        "aborting the run",
    )
    ingest.add_argument(
        "--save-pack",
        metavar="PATH",
        help="write the ingested table as a mmap-servable flatpack file",
    )
    ingest.add_argument(
        "--serve-tenant",
        metavar="NAME",
        help="after ingesting, host the table as this tenant of the "
        "multi-tenant service (newline-JSON over TCP, like 'serve')",
    )
    ingest.add_argument(
        "--host", default="127.0.0.1", help="bind address for --serve-tenant"
    )
    ingest.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port for --serve-tenant (default 0 = ephemeral)",
    )

    build = commands.add_parser(
        "build",
        help="build the lookup table and report build + cache statistics",
    )
    build.add_argument("file")
    _add_build_mode_options(build)
    build.set_defaults(mode="auto")
    build.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_SIZE,
        metavar="N",
        help="LRU capacity of the query cache exercised by the report "
        f"(default {DEFAULT_CACHE_SIZE})",
    )

    explain = commands.add_parser(
        "explain", help="explain the dominance reasoning for one query"
    )
    explain.add_argument("file")
    explain.add_argument("query", type=_parse_query, help="Class::member")

    metrics = commands.add_parser("metrics", help="hierarchy metrics")
    metrics.add_argument("file")

    dot = commands.add_parser("dot", help="DOT export")
    dot.add_argument("file")
    dot.add_argument(
        "--subobjects",
        metavar="CLASS",
        help="draw CLASS's subobject graph instead of the CHG",
    )

    slice_cmd = commands.add_parser(
        "slice", help="slice the hierarchy for the given queries"
    )
    slice_cmd.add_argument("file")
    slice_cmd.add_argument(
        "queries", nargs="+", type=_parse_query, metavar="Class::member"
    )
    slice_cmd.add_argument(
        "--json", action="store_true", help="emit the slice as JSON"
    )

    trace = commands.add_parser(
        "trace", help="propagation trace for one member (Figures 4-7 style)"
    )
    trace.add_argument("file")
    trace.add_argument("member")
    trace.add_argument(
        "--concrete",
        action="store_true",
        help="show concrete reaching definitions instead of abstractions",
    )

    diff = commands.add_parser(
        "diff", help="lookup-impact diff between two hierarchy versions"
    )
    diff.add_argument("before")
    diff.add_argument("after")

    lint = commands.add_parser(
        "lint", help="lint the hierarchy for lookup hazards"
    )
    lint.add_argument("file")
    lint.add_argument(
        "--errors-only", action="store_true", help="suppress warnings/info"
    )

    targets = commands.add_parser(
        "targets",
        help="possible dispatch targets of Class::member calls (CHA)",
    )
    targets.add_argument("file")
    targets.add_argument("query", type=_parse_query, help="Class::member")

    vtables = commands.add_parser(
        "vtables", help="vtables (final overriders + this adjustments)"
    )
    vtables.add_argument("file")
    vtables.add_argument("class_name", metavar="CLASS")

    fuzz = commands.add_parser(
        "fuzz",
        help="run a seeded differential fuzzing campaign "
        "(all engines vs the subobject-poset oracle)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=500,
        metavar="N",
        help="iteration budget (default 500)",
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="additionally stop after this many seconds",
    )
    fuzz.add_argument(
        "--engines",
        default=None,
        metavar="A,B,...",
        help="comma-separated engine subset (default: "
        "per-member,batched,sharded,fastpath,cached,lazy,incremental,"
        "snapshot,columnar)",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="regression corpus directory: replayed before fuzzing, "
        "new shrunk finds are persisted into it",
    )
    fuzz.add_argument(
        "--max-classes",
        type=int,
        default=12,
        metavar="N",
        help="size cap for generated hierarchies (default 12; the "
        "definitional oracle is exponential on non-virtual diamonds)",
    )
    fuzz.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write the JSON campaign report to FILE",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging of failing hierarchies",
    )
    fuzz.add_argument(
        "--semantics",
        default=None,
        metavar="A,B,...",
        help="comma-separated semantics subset for the cross-semantics "
        "differential leg (default: all of "
        f"{','.join(SEMANTICS_NAMES)}); pairwise disagreements not in "
        "the divergence catalog are findings",
    )

    serve = commands.add_parser(
        "serve",
        help="host the multi-tenant snapshot lookup service "
        "(newline-JSON over TCP)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_SIZE,
        metavar="N",
        help="shared serving LRU capacity "
        f"(default {DEFAULT_CACHE_SIZE})",
    )
    serve.add_argument(
        "--semantics",
        choices=SEMANTICS_NAMES,
        default=DEFAULT_SEMANTICS,
        help="service-wide dispatch rule new tenants inherit "
        f"(default: {DEFAULT_SEMANTICS}; per-tenant overrides ride "
        "the add_tenant op)",
    )
    serve.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="NAME=PACK",
        help="boot a tenant from a flatpack file before accepting "
        "connections (repeatable; O(mmap) cold start per tenant)",
    )
    return parser


def _render_lookup_stats(table) -> str:
    stats = table.stats
    return (
        f"[build mode={table.mode}] "
        f"classes_visited={stats.classes_visited} "
        f"entries_computed={stats.entries_computed} "
        f"red_propagations={stats.red_propagations} "
        f"blue_propagations={stats.blue_propagations} "
        f"dominance_checks={stats.dominance_checks}"
    )


def _render_fastpath_stats(table) -> Optional[str]:
    """The flat serving overlay's certification and routing counters,
    or ``None`` when the fast path is off."""
    flat = table.flat_table
    if flat is None:
        return None
    stats = flat.stats
    return (
        f"[fastpath] flat_columns={flat.flat_column_count} "
        f"ambiguous_columns={flat.ambiguous_column_count} "
        f"flat_cells={flat.flat_cells} "
        f"flat_hits={stats.flat_hits} fallback_hits={stats.fallback_hits}"
    )


def _render_columnar_stats(table) -> Optional[str]:
    """The columnar batch kernel's layout and serving counters, or
    ``None`` when the table has no columnar layout (disabled, or an
    in-place table)."""
    columnar = table.columnar_table
    if columnar is None:
        return None
    stats = columnar.stats
    return (
        f"[columnar] columns={columnar.column_count} "
        f"pool_slots={len(columnar.pool)} "
        f"populated_cells={columnar.populated_cells} "
        f"numpy={'on' if columnar.use_numpy else 'off'} "
        f"batches={stats.batches} queries={stats.queries} "
        f"gathers={stats.gathers} scalar_serves={stats.scalar_serves} "
        f"columns_materialized={stats.columns_materialized}"
    )


def _exercise_columnar(graph: ClassHierarchyGraph, table) -> Optional[str]:
    """Answer every visible ``(class, member)`` pair through one
    ``lookup_many`` batch, cross-check the gather against the per-query
    path, and return the columnar stats line."""
    queries = [
        (class_name, member)
        for class_name in graph.classes
        for member in table.visible_members(class_name)
    ]
    batched = table.lookup_many(queries)
    for (class_name, member), result in zip(queries, batched):
        assert result == table.lookup(class_name, member)
    return _render_columnar_stats(table)


def _report_delta_stats(
    graph: ClassHierarchyGraph, args: argparse.Namespace
) -> None:
    """The ``--delta-stats`` report: rebuild the hierarchy without its
    last leaf class, warm a table and a query cache over that prefix,
    replay the leaf as a live mutation, and show what
    ``MemberLookupTable.apply_delta`` / the surgical cache invalidation
    actually touched — the delta win without the benchmark harness."""
    leaves = [
        name for name in graph.classes if not graph.direct_derived(name)
    ]
    if len(graph) < 2 or not leaves:
        print("delta stats: hierarchy too small to replay a declaration")
        return
    leaf = leaves[-1]

    prefix = ClassHierarchyGraph()
    for name in graph.classes:
        if name != leaf:
            prefix.add_class(name, graph.declared_members(name).values())
    for name in graph.classes:
        if name == leaf:
            continue
        for edge in graph.direct_bases(name):
            prefix.add_edge(
                edge.base, name, virtual=edge.virtual, access=edge.access
            )

    table = build_lookup_table(
        prefix,
        mode=args.mode,
        max_workers=args.max_workers,
        shards=args.shards,
        fastpath=args.fastpath,
        columnar=args.columnar,
        semantics=args.semantics,
    )
    cached = CachedMemberLookup(prefix, semantics=args.semantics)
    for name in prefix.classes:
        for member in table.visible_members(name):
            cached.lookup(name, member)

    prefix.add_class(leaf, graph.declared_members(leaf).values())
    for edge in graph.direct_bases(leaf):
        prefix.add_edge(
            edge.base, leaf, virtual=edge.virtual, access=edge.access
        )
    delta = table.apply_delta()
    ch = table.compiled
    probe = table.visible_members(leaf)
    for member in probe:
        result = cached.lookup(leaf, member)
        assert result == table.lookup(leaf, member)
    cache = cached.cache_stats
    print(
        f"delta stats: replayed leaf class {leaf!r} "
        f"({graph.base_count(leaf)} base edge(s), "
        f"{len(graph.declared_members(leaf))} member(s)) as a mutation"
    )
    print(
        f"  cone: {delta.cone_classes} of {ch.n_classes} classes; "
        f"affected members: {delta.affected_members} of {ch.n_members}"
    )
    print(
        f"  table rows: recomputed={delta.entries_recomputed} "
        f"reused={delta.entries_reused} "
        f"boundary_rows={delta.boundary_rows} "
        f"full_rebuilds={delta.full_rebuilds}"
    )
    print(
        f"  query cache: evicted={cache.entries_evicted} "
        f"survived={cache.entries_survived} "
        f"full_flushes={cache.full_flushes}"
    )
    if table.fastpath_stats is not None:
        fast = table.fastpath_stats
        print(
            f"  fastpath: demotions={fast.demotions} "
            f"promotions={fast.promotions} "
            f"cone_updates={fast.cone_updates}"
        )


def _run_build(graph: ClassHierarchyGraph, args: argparse.Namespace) -> int:
    """The ``build`` command: construct the table in the requested mode,
    then exercise the generation-keyed query cache over every visible
    ``(class, member)`` pair twice, and report both sets of counters."""
    import time

    ch = graph.compile()
    start = time.perf_counter()
    table = build_lookup_table(
        graph,
        mode=args.mode,
        max_workers=args.max_workers,
        shards=args.shards,
        fastpath=args.fastpath,
        columnar=args.columnar,
        semantics=args.semantics,
    )
    elapsed = time.perf_counter() - start
    print(
        f"built lookup table for {ch.n_classes} classes / "
        f"{ch.n_members} member names / {len(ch.base_targets)} edges "
        f"in {elapsed * 1e3:.2f} ms"
    )
    print(
        f"  requested mode: {args.mode}  resolved mode: {table.mode}  "
        f"semantics: {table.semantics.name}"
    )
    print("  " + _render_lookup_stats(table))

    cached = CachedMemberLookup(
        graph, maxsize=args.cache_size, semantics=args.semantics
    )
    queries = 0
    for _ in range(2):
        for class_name in graph.classes:
            for member in table.visible_members(class_name):
                result = cached.lookup(class_name, member)
                assert result == table.lookup(class_name, member)
                queries += 1
    cache = cached.cache_stats
    print(
        f"  query cache (size {args.cache_size}): {queries} queries, "
        f"hits={cache.hits} misses={cache.misses} "
        f"evictions={cache.evictions} invalidations={cache.invalidations} "
        f"hit_rate={cache.hit_rate():.1%}"
    )
    fastpath_line = _render_fastpath_stats(table)
    if fastpath_line is not None:
        # The cross-check above queried the table once per pair, so the
        # flat/fallback split reflects real serving, not a cold overlay.
        print("  " + fastpath_line)
    if args.columnar:
        columnar_line = _exercise_columnar(graph, table)
        if columnar_line is not None:
            print("  " + columnar_line)
    if args.delta_stats:
        _report_delta_stats(graph, args)
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    """The ``fuzz`` command: run a campaign, print the summary, write the
    JSON report, and exit nonzero iff any engine diverged."""
    from repro.fuzz import ENGINES, run_campaign

    engines = (
        tuple(name.strip() for name in args.engines.split(",") if name.strip())
        if args.engines
        else ENGINES
    )
    unknown = [name for name in engines if name not in ENGINES]
    if unknown:
        print(
            f"error: unknown engine(s) {', '.join(unknown)} "
            f"(choose from {', '.join(ENGINES)})",
            file=sys.stderr,
        )
        return 2
    semantics = (
        tuple(
            name.strip()
            for name in args.semantics.split(",")
            if name.strip()
        )
        if args.semantics
        else None
    )
    if semantics:
        unknown = [name for name in semantics if name not in SEMANTICS_NAMES]
        if unknown:
            print(
                f"error: unknown semantics {', '.join(unknown)} "
                f"(choose from {', '.join(SEMANTICS_NAMES)})",
                file=sys.stderr,
            )
            return 2
    report = run_campaign(
        seed=args.seed,
        budget=args.budget,
        engines=engines,
        corpus_dir=args.corpus,
        time_budget=args.time_budget,
        max_classes=args.max_classes,
        shrink=not args.no_shrink,
        semantics=semantics,
    )
    print(report.render())
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
        print(f"report written to {args.report}")
    return report.exit_code


def _run_table_pack(args: argparse.Namespace) -> int:
    """``repro table --load-pack``: serve the printed table straight
    off the mmapped file — no hierarchy source, no build."""
    from repro.core.flatpack import mmap_table

    if args.file is not None:
        raise ValueError(
            "--load-pack serves an already-packed table; drop the "
            "hierarchy file argument (or use --save-pack to write one)"
        )
    with mmap_table(args.load_pack) as packed:
        for class_name in packed._interner().class_names:
            for member in packed.visible_members(class_name):
                result = packed.lookup(class_name, member)
                if args.ambiguous_only and not result.is_ambiguous:
                    continue
                print(result)
        if args.stats:
            stats = packed.stats()
            if stats is not None:
                print(
                    f"[pack generation={packed.generation} "
                    f"semantics={packed.semantics.name}] "
                    f"batches={stats.batches} queries={stats.queries} "
                    f"gathers={stats.gathers} "
                    f"scalar_serves={stats.scalar_serves} "
                    f"columns_materialized={stats.columns_materialized}"
                )
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: stream files into one live table, publishing a
    snapshot generation every ``--batch`` classes."""
    from repro.ingest.pipeline import DEFAULT_BATCH_SIZE, StreamingIngest

    batch_size = args.batch if args.batch is not None else DEFAULT_BATCH_SIZE

    def on_batch(record) -> None:
        print(
            f"[batch {record.index}] +{record.classes} classes -> "
            f"generation {record.generation} "
            f"(cone={record.cone_classes}, "
            f"recomputed={record.entries_recomputed}, "
            f"{record.elapsed_s * 1e3:.1f} ms)"
        )

    pipeline = StreamingIngest(
        batch_size=batch_size,
        semantics=args.semantics,
        keep_going=args.keep_going,
        on_batch=on_batch,
    )
    report = pipeline.ingest(args.files)
    for message in report.parse_errors:
        print(f"error: {message}", file=sys.stderr)
    for diagnostic in pipeline.diagnostics:
        print(diagnostic, file=sys.stderr)
    table = pipeline.table
    snapshot = table.snapshot
    print(
        f"ingested {report.classes} classes from {len(report.files)} "
        f"file(s) in {len(report.batches)} batch(es), "
        f"{report.elapsed_s:.2f} s; generation {snapshot.generation}, "
        f"{snapshot.ch.n_members} distinct members"
    )
    if args.save_pack:
        from repro.core.flatpack import pack as write_pack

        written = write_pack(table, args.save_pack)
        print(f"pack written to {args.save_pack} ({written} bytes)")
    if args.serve_tenant:
        import asyncio

        from repro.serve.server import ServeFront
        from repro.serve.service import LookupService

        service = LookupService(semantics=args.semantics)
        tenant = service.add_tenant(args.serve_tenant, table.graph)
        print(
            f"serving tenant {args.serve_tenant!r} "
            f"({len(tenant.graph)} classes)"
        )
        front = ServeFront(service, host=args.host, port=args.port)
        try:
            asyncio.run(front.serve())
        except KeyboardInterrupt:
            pass
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ServeFront
    from repro.serve.service import LookupService

    preload = {}
    for spec in args.preload:
        name, separator, pack_path = spec.partition("=")
        if not separator or not name or not pack_path:
            raise ValueError(
                f"--preload takes NAME=PACK, got {spec!r}"
            )
        preload[name] = pack_path
    service = LookupService(
        cache_size=args.cache_size,
        semantics=args.semantics,
        preload=preload,
    )
    for name in preload:
        tenant = service.tenant(name)
        print(
            f"preloaded tenant {name!r} from {preload[name]} "
            f"(generation {tenant.snapshot.generation})"
        )
    front = ServeFront(service, host=args.host, port=args.port)
    try:
        asyncio.run(front.serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except (ReproError, ParseError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "check":
        text = Path(args.file).read_text()
        if text.lstrip().startswith("{"):
            hierarchy_loads(text)
            print("hierarchy dump OK")
            return 0
        program = analyze(text)
        for diagnostic in program.diagnostics:
            print(diagnostic.render(text))
        errors = len(program.errors())
        print(
            f"{len(program.hierarchy)} classes, "
            f"{len(program.resolutions)} member accesses, "
            f"{errors} error(s)"
        )
        return 1 if errors else 0

    if args.command == "fuzz":
        return _run_fuzz(args)

    if args.command == "ingest":
        return _run_ingest(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "table" and args.load_pack:
        return _run_table_pack(args)

    if args.command == "diff":
        before, _ = _load_hierarchy(args.before)
        after, _ = _load_hierarchy(args.after)
        changes = diff_hierarchies(before, after)
        print(render_diff(changes))
        return 1 if changes else 0

    if args.command == "table" and args.file is None:
        raise ValueError("table needs a hierarchy file (or --load-pack)")

    graph, diagnostics = _load_hierarchy(args.file)
    for line in diagnostics:
        print(line, file=sys.stderr)

    if args.command == "lookup":
        class_name, member = args.query
        if args.no_static_rule:
            result = build_lookup_table(graph).lookup(class_name, member)
        else:
            result = StaticAwareLookupTable(graph).lookup(class_name, member)
        print(result)
        return 0 if result.is_unique else 1

    if args.command == "table":
        _coerce_semantics_mode(args)
        table = build_lookup_table(
            graph,
            mode=args.mode,
            max_workers=args.max_workers,
            shards=args.shards,
            fastpath=args.fastpath,
            columnar=args.columnar,
            semantics=args.semantics,
        )
        for class_name in graph.classes:
            for member in table.visible_members(class_name):
                result = table.lookup(class_name, member)
                if args.ambiguous_only and not result.is_ambiguous:
                    continue
                print(result)
        if args.columnar:
            columnar_line = _exercise_columnar(graph, table)
            if columnar_line is not None:
                print(columnar_line)
        if args.stats:
            print(_render_lookup_stats(table))
            fastpath_line = _render_fastpath_stats(table)
            if fastpath_line is not None:
                print(fastpath_line)
        if args.delta_stats:
            _report_delta_stats(graph, args)
        if args.save_pack:
            from repro.core.flatpack import pack as write_pack

            written = write_pack(table, args.save_pack)
            print(
                f"pack written to {args.save_pack} ({written} bytes, "
                f"generation {table.compiled.generation})"
            )
        return 0

    if args.command == "pack":
        from repro.core.flatpack import pack as write_pack

        table = build_lookup_table(
            graph, mode="batched", fastpath=True, semantics=args.semantics
        )
        written = write_pack(table, args.out)
        ch = table.compiled
        print(
            f"packed {ch.n_classes} classes, {ch.n_members} members "
            f"(generation {ch.generation}, semantics "
            f"{table.semantics.name}) -> {args.out} ({written} bytes)"
        )
        return 0

    if args.command == "build":
        _coerce_semantics_mode(args)
        return _run_build(graph, args)

    if args.command == "explain":
        class_name, member = args.query
        print(explain_lookup(graph, class_name, member))
        return 0

    if args.command == "metrics":
        print(compute_metrics(graph).render())
        return 0

    if args.command == "dot":
        if args.subobjects:
            print(subobject_graph_to_dot(SubobjectGraph(graph, args.subobjects)))
        else:
            print(chg_to_dot(graph))
        return 0

    if args.command == "slice":
        result = slice_hierarchy(graph, args.queries)
        if args.json:
            print(hierarchy_dumps(result.hierarchy))
        else:
            print(result.hierarchy.summary())
            removed = sorted(set(graph.classes) - result.kept_classes)
            print(f"removed: {', '.join(removed) if removed else '(nothing)'}")
        return 0

    if args.command == "lint":
        findings = lint_hierarchy(graph)
        if args.errors_only:
            findings = [
                f for f in findings if f.severity is LintSeverity.ERROR
            ]
        print(render_findings(findings))
        has_errors = any(
            f.severity is LintSeverity.ERROR for f in findings
        )
        return 1 if has_errors else 0

    if args.command == "vtables":
        print(build_vtables(graph, args.class_name).render())
        return 0

    if args.command == "targets":
        class_name, member = args.query
        analysis = analyze_call_targets(graph, class_name, member)
        print(analysis.render())
        return 0

    if args.command == "trace":
        if args.concrete:
            print(render_concrete_trace(graph, args.member))
        else:
            print(render_abstract_trace(graph, args.member))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
