"""Emit C++ source text from a class hierarchy graph.

The inverse of the frontend: any hierarchy whose class names are plain
identifiers can be rendered as a compilable C++ subset program, which
round-trips through :func:`repro.frontend.analyze` back to an identical
CHG.  Used to generate large realistic translation units for the
compile-pipeline benchmark (the paper's "lookups can be 15% of
compilation time" motivation) and for fuzz-style round-trip tests.
"""

from __future__ import annotations

import heapq

from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Access, Member, MemberKind


def _member_line(member: Member) -> str:
    parts = []
    if member.using_from is not None:
        return f"using {member.using_from}::{member.name};"
    if member.kind is MemberKind.TYPE:
        return f"typedef int {member.name};"
    if member.kind is MemberKind.ENUMERATOR:
        return f"enum {{ {member.name} }};"
    if member.is_static:
        parts.append("static")
    type_text = member.type_text or (
        "void" if member.kind is MemberKind.FUNCTION else "int"
    )
    parts.append(type_text)
    suffix = "()" if member.kind is MemberKind.FUNCTION else ""
    parts.append(f"{member.name}{suffix};")
    return " ".join(parts)


def emit_class(
    graph: ClassHierarchyGraph, name: str, *, decorate: bool = False
) -> list[str]:
    """Render one class definition as source lines.

    With ``decorate=True`` the definition is dressed up the way real
    headers are — a constructor with an initializer list over the first
    data member and an inline body on the last member function — *
    without changing the declared member set* (constructors and bodies
    are skipped by the parser), so decorated corpus files still lower
    to the identical hierarchy.
    """
    keyword = "struct" if graph.is_struct(name) else "class"
    bases = graph.direct_bases(name)
    base_text = ""
    if bases:
        specs = []
        for edge in bases:
            virtual = "virtual " if edge.virtual else ""
            specs.append(f"{virtual}{edge.access} {edge.base}")
        base_text = " : " + ", ".join(specs)
    members = list(graph.declared_members(name).values())
    if not members and not decorate:
        return [f"{keyword} {name}{base_text} {{}};"]
    lines = [f"{keyword} {name}{base_text} {{"]
    current_access: Access | None = None
    first_data = next(
        (
            m
            for m in members
            if m.kind is MemberKind.DATA
            and not m.is_static
            and m.using_from is None
        ),
        None,
    )
    last_function = next(
        (
            m
            for m in reversed(members)
            if m.kind is MemberKind.FUNCTION
            and not m.is_static
            and m.using_from is None
        ),
        None,
    )
    for member in members:
        if member.access is not current_access:
            lines.append(f"{member.access}:")
            current_access = member.access
        if decorate and member is last_function:
            type_text = member.type_text or "void"
            body = "return;" if type_text == "void" else "return 0;"
            static = "static " if member.is_static else ""
            lines.append(
                f"  {static}{type_text} {member.name}() {{ {body} }}"
            )
            continue
        lines.append(f"  {_member_line(member)}")
    if decorate:
        if current_access is not Access.PUBLIC:
            lines.append("public:")
        init = f" : {first_data.name}(0)" if first_data is not None else ""
        lines.append(f"  {name}(){init} {{}}")
        lines.append(f"  ~{name}() {{}}")
    lines.append("};")
    return lines


def emission_order(graph: ClassHierarchyGraph) -> list[str]:
    """Class names in an emission-valid order: every base precedes its
    derived classes, ties broken by declaration order.

    When declaration order already satisfies the C++ bases-first
    discipline (every graph built through the frontend or the builder
    does) this *is* declaration order; graphs mutated out of it — the
    fuzz mutators may append a class and then edge it under earlier
    ones — get the minimal stable reordering instead of emitting
    un-analysable forward base references."""
    names = list(graph.classes)
    index = {name: i for i, name in enumerate(names)}
    remaining: dict[str, int] = {}
    dependants: dict[str, list[str]] = {name: [] for name in names}
    for name in names:
        bases = {edge.base for edge in graph.direct_bases(name)}
        remaining[name] = len(bases)
        for base in bases:
            dependants[base].append(name)
    ready = [index[n] for n in names if remaining[n] == 0]
    heapq.heapify(ready)
    order: list[str] = []
    while ready:
        name = names[heapq.heappop(ready)]
        order.append(name)
        for dependant in dependants[name]:
            remaining[dependant] -= 1
            if remaining[dependant] == 0:
                heapq.heappush(ready, index[dependant])
    if len(order) != len(names):  # inheritance cycle: unreachable via
        order.extend(n for n in names if remaining[n] > 0)  # the graph API
    return order


def emit_cpp(graph: ClassHierarchyGraph) -> str:
    """Render the hierarchy as C++ class definitions, in declaration
    order (bases hoisted first if a mutation broke that invariant — see
    :func:`emission_order`), preserving struct-ness, base
    order/virtuality/access, and member access sections."""
    graph.validate()
    lines: list[str] = []
    for name in emission_order(graph):
        lines.extend(emit_class(graph, name))
    return "\n".join(lines) + "\n"


def emit_cpp_with_queries(
    graph: ClassHierarchyGraph,
    queries: list[tuple[str, str]],
) -> str:
    """The hierarchy plus a ``main`` performing the given member
    accesses (one local variable per distinct queried class)."""
    source = [emit_cpp(graph), "main() {"]
    declared: dict[str, str] = {}
    for class_name, _member in queries:
        if class_name not in declared:
            var = f"v{len(declared)}"
            declared[class_name] = var
            source.append(f"  {class_name} {var};")
    for class_name, member in queries:
        source.append(f"  {declared[class_name]}.{member};")
    source.append("}")
    return "\n".join(source) + "\n"
