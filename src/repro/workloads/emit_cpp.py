"""Emit C++ source text from a class hierarchy graph.

The inverse of the frontend: any hierarchy whose class names are plain
identifiers can be rendered as a compilable C++ subset program, which
round-trips through :func:`repro.frontend.analyze` back to an identical
CHG.  Used to generate large realistic translation units for the
compile-pipeline benchmark (the paper's "lookups can be 15% of
compilation time" motivation) and for fuzz-style round-trip tests.
"""

from __future__ import annotations

from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Access, Member, MemberKind


def _member_line(member: Member) -> str:
    parts = []
    if member.using_from is not None:
        return f"using {member.using_from}::{member.name};"
    if member.kind is MemberKind.TYPE:
        return f"typedef int {member.name};"
    if member.kind is MemberKind.ENUMERATOR:
        return f"enum {{ {member.name} }};"
    if member.is_static:
        parts.append("static")
    type_text = member.type_text or (
        "void" if member.kind is MemberKind.FUNCTION else "int"
    )
    parts.append(type_text)
    suffix = "()" if member.kind is MemberKind.FUNCTION else ""
    parts.append(f"{member.name}{suffix};")
    return " ".join(parts)


def emit_cpp(graph: ClassHierarchyGraph) -> str:
    """Render the hierarchy as C++ class definitions, in declaration
    order, preserving struct-ness, base order/virtuality/access, and
    member access sections."""
    graph.validate()
    lines: list[str] = []
    for name in graph.classes:
        keyword = "struct" if graph.is_struct(name) else "class"
        bases = graph.direct_bases(name)
        base_text = ""
        if bases:
            specs = []
            for edge in bases:
                virtual = "virtual " if edge.virtual else ""
                specs.append(f"{virtual}{edge.access} {edge.base}")
            base_text = " : " + ", ".join(specs)
        members = list(graph.declared_members(name).values())
        if not members:
            lines.append(f"{keyword} {name}{base_text} {{}};")
            continue
        lines.append(f"{keyword} {name}{base_text} {{")
        current_access: Access | None = None
        for member in members:
            if member.access is not current_access:
                lines.append(f"{member.access}:")
                current_access = member.access
            lines.append(f"  {_member_line(member)}")
        lines.append("};")
    return "\n".join(lines) + "\n"


def emit_cpp_with_queries(
    graph: ClassHierarchyGraph,
    queries: list[tuple[str, str]],
) -> str:
    """The hierarchy plus a ``main`` performing the given member
    accesses (one local variable per distinct queried class)."""
    source = [emit_cpp(graph), "main() {"]
    declared: dict[str, str] = {}
    for class_name, _member in queries:
        if class_name not in declared:
            var = f"v{len(declared)}"
            declared[class_name] = var
            source.append(f"  {class_name} {var};")
    for class_name, member in queries:
        source.append(f"  {declared[class_name]}.{member};")
    source.append("}")
    return "\n".join(source) + "\n"
