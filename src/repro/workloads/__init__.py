"""Workload generators and the paper's example hierarchies."""

from repro.workloads.generators import (
    ambiguous_fan,
    binary_tree,
    blue_heavy_hierarchy,
    chain,
    deep_ambiguous_ladder,
    grid,
    nonvirtual_diamond_ladder,
    random_hierarchy,
    virtual_diamond_ladder,
    wide_unambiguous,
)
from repro.workloads.emit_cpp import emit_cpp, emit_cpp_with_queries
from repro.workloads.realworld import gui_toolkit, interface_heavy
from repro.workloads.paper_figures import (
    ALL_FIGURES,
    FIGURE_EXPECTATIONS,
    FIGURE_SOURCES,
    figure1,
    figure1_source,
    figure2,
    figure2_source,
    figure3,
    figure3_source,
    figure9,
    figure9_source,
    iostream_like,
)

__all__ = [
    "ALL_FIGURES",
    "FIGURE_EXPECTATIONS",
    "FIGURE_SOURCES",
    "ambiguous_fan",
    "binary_tree",
    "blue_heavy_hierarchy",
    "chain",
    "deep_ambiguous_ladder",
    "emit_cpp",
    "emit_cpp_with_queries",
    "figure1",
    "figure1_source",
    "figure2",
    "figure2_source",
    "figure3",
    "figure3_source",
    "figure9",
    "figure9_source",
    "grid",
    "gui_toolkit",
    "interface_heavy",
    "iostream_like",
    "nonvirtual_diamond_ladder",
    "random_hierarchy",
    "virtual_diamond_ladder",
    "wide_unambiguous",
]
