"""Generated-source corpora for the streaming ingestion pipeline.

Where :mod:`repro.workloads.generators` builds hierarchies as *graphs*,
this module renders hierarchies as *source files* — multi-thousand-class
translation units split across many ``#include``-free headers with
cross-file base references, the input shape
:class:`~repro.ingest.pipeline.StreamingIngest` exists for.

Three families, echoing the paper's "real headers" motivation:

* :func:`iostream_corpus` — many iostream-style modules: virtual
  diamonds (``ios`` → ``istream``/``ostream`` → ``iostream``) with
  format/buffer helpers, each module in its own namespace.
* :func:`gui_corpus` — a GUI-toolkit-scale layered DAG (the
  ``layered_hierarchy`` generator rendered by ``emit_cpp``), decorated
  with constructors, initializer lists and inline method bodies the
  way real widget headers are.
* :func:`template_corpus` — template-expansion style: opaque template
  definitions the parser must skip without desync, followed by their
  "expanded" concrete instantiation classes.

Every file is deterministic in the seed, carries include guards and
banner comments (exercising the preprocessor-line and comment paths),
and lowers to the identical hierarchy whether ingested streaming or
parsed whole.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.hierarchy.graph import ClassHierarchyGraph
from repro.workloads.emit_cpp import emission_order, emit_class
from repro.workloads.generators import layered_hierarchy

__all__ = [
    "CorpusFile",
    "emit_corpus",
    "gui_corpus",
    "iostream_corpus",
    "make_corpus",
    "template_corpus",
    "write_corpus",
]


@dataclass(frozen=True)
class CorpusFile:
    """One generated header: a relative file name plus its text."""

    name: str
    text: str


def _guard(name: str) -> str:
    return name.upper().replace(".", "_").replace("/", "_") + "_"


def _banner(lines: list[str], name: str, index: int, total: int) -> None:
    guard = _guard(name)
    lines.append(f"// {name} — generated corpus file {index + 1}/{total}.")
    lines.append("// Derives from classes defined in earlier files;")
    lines.append("// no #include needed (shared known-classes set).")
    lines.append(f"#ifndef {guard}")
    lines.append(f"#define {guard}")


def _footer(lines: list[str]) -> None:
    lines.append("#endif")
    lines.append("")


def emit_corpus(
    graph: ClassHierarchyGraph,
    *,
    files: int = 16,
    prefix: str = "tu",
    namespace: Optional[str] = None,
    decorate: bool = True,
) -> list[CorpusFile]:
    """Split a hierarchy into ``files`` consecutive headers.

    Classes are emitted in declaration order, so every base lives in
    the same file or an earlier one — exactly the multi-file unit shape
    the ingestion pipeline resolves through its shared known-classes
    set.  With ``namespace`` the classes of every file live in that
    (reopened) namespace and lower to qualified names."""
    if files < 1:
        raise ValueError("need at least one file")
    names = emission_order(graph)
    files = min(files, max(1, len(names)))
    chunk = (len(names) + files - 1) // files
    out: list[CorpusFile] = []
    for index in range(files):
        slice_names = names[index * chunk : (index + 1) * chunk]
        if not slice_names:
            break
        file_name = f"{prefix}_{index:03d}.h"
        lines: list[str] = []
        _banner(lines, file_name, index, files)
        indent = ""
        if namespace is not None:
            lines.append(f"namespace {namespace} {{")
            indent = "  "
        for class_name in slice_names:
            lines.extend(
                indent + line
                for line in emit_class(graph, class_name, decorate=decorate)
            )
        if namespace is not None:
            lines.append("}")
        _footer(lines)
        out.append(CorpusFile(name=file_name, text="\n".join(lines)))
    return out


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------


def iostream_corpus(
    *, modules: int = 32, files: int = 8, seed: int = 0
) -> list[CorpusFile]:
    """Iostream-style modules: each is the classic virtual diamond
    (``ios`` → ``istream``/``ostream`` → ``iostream``) plus buffer and
    format helpers, wrapped in its own namespace (``io0``, ``io1``,
    ...) — 7 classes per module."""
    if modules < 1:
        raise ValueError("need at least one module")
    rng = random.Random(seed)
    per_file = (modules + files - 1) // files
    out: list[CorpusFile] = []
    total = (modules + per_file - 1) // per_file
    for index in range(total):
        file_name = f"iostream_{index:03d}.h"
        lines: list[str] = []
        _banner(lines, file_name, index, total)
        for module in range(
            index * per_file, min((index + 1) * per_file, modules)
        ):
            extra = rng.choice(("flags", "width", "precision"))
            lines.append(f"namespace io{module} {{")
            lines.append("  class streambuf { public: int sputc; };")
            lines.append(
                "  class ios { public: "
                f"streambuf* rdbuf; int state; int {extra}; "
                "ios() : state(0) {} };"
            )
            lines.append(
                "  class istream : public virtual ios "
                "{ public: int get() { return 0; } int gcount; };"
            )
            lines.append(
                "  class ostream : public virtual ios "
                "{ public: int put() { return 0; } };"
            )
            lines.append(
                "  class iostream : public istream, public ostream "
                "{ public: iostream() {} };"
            )
            lines.append(
                "  class fstream : public iostream "
                "{ public: int open() { return 0; } };"
            )
            lines.append(
                "  class stringstream : public iostream "
                "{ public: int str; };"
            )
            lines.append("}")
        _footer(lines)
        out.append(CorpusFile(name=file_name, text="\n".join(lines)))
    return out


# Widget-API member vocabulary: real toolkits declare *many distinct*
# member names across the hierarchy, and the lookup table's cost is
# |classes| × |distinct members| — a 3-name vocabulary would make table
# maintenance look artificially cheap next to parsing.
_GUI_MEMBERS = (
    "paint", "resize", "show", "hide", "focus", "blur", "enable",
    "disable", "x", "y", "w", "h", "parent_", "child_count", "style",
    "on_click", "on_key", "on_scroll", "layout", "invalidate", "text",
    "icon", "tooltip", "cursor", "z_order", "opacity", "visible",
    "measure", "arrange", "hit_test", "accept", "state_flags",
)


def gui_corpus(
    *,
    layers: int = 40,
    width: int = 50,
    files: int = 16,
    seed: int = 0,
    decorate: bool = True,
) -> list[CorpusFile]:
    """A GUI-toolkit-scale layered DAG (roughly ``layers × width``
    classes with multiple, occasionally virtual, bases and a realistic
    widget-API member vocabulary) rendered as decorated headers — the
    multi-thousand-class corpus behind ``BENCH_ingest.json``."""
    graph = layered_hierarchy(
        layers,
        width,
        seed=seed,
        member_names=_GUI_MEMBERS,
        member_probability=0.18,
    )
    return emit_corpus(graph, files=files, prefix="gui", decorate=decorate)


_TEMPLATE_PREAMBLE = (
    "template <typename T> class Vec {\n"
    " public:\n"
    "  Vec() : data_(0), size_(0) {}\n"
    "  T* data_; int size_;\n"
    "  T& at(int i) { return data_[i]; }\n"
    "};\n"
    "template <typename K, typename V> struct Pair { K first; V second; };\n"
    "template <class T> T max_of(T a, T b) { return a < b ? b : a; }\n"
)

_SCALAR_TYPES = ("int", "char", "double", "long", "unsigned")


def template_corpus(
    *, instantiations: int = 64, files: int = 8, seed: int = 0
) -> list[CorpusFile]:
    """Template-expansion style: every file restates opaque template
    definitions (the parser must skip them without desync), then
    defines the "expanded" concrete classes a pre-instantiation build
    step would emit — ``Vec_int_007 : public Container``-shaped, with
    template-argument types in member declarations."""
    rng = random.Random(seed)
    total = min(files, max(1, instantiations))
    per_file = (instantiations + total - 1) // total
    out: list[CorpusFile] = []
    for index in range(total):
        file_name = f"expand_{index:03d}.h"
        lines: list[str] = []
        _banner(lines, file_name, index, total)
        lines.append(_TEMPLATE_PREAMBLE)
        if index == 0:
            lines.append(
                "class Container { public: int size_of; "
                "Container() : size_of(0) {} };"
            )
        for instance in range(
            index * per_file, min((index + 1) * per_file, instantiations)
        ):
            scalar = rng.choice(_SCALAR_TYPES)
            tag = scalar.replace(" ", "_")
            name = f"Vec_{tag}_{instance:04d}"
            lines.append(f"class {name} : public Container {{")
            lines.append(" public:")
            lines.append(f"  {scalar} item_{instance};")
            lines.append(f"  Vec<{scalar}> backing_{instance};")
            lines.append(
                f"  {scalar} get_{instance}() {{ return item_{instance}; }}"
            )
            lines.append("};")
        _footer(lines)
        out.append(CorpusFile(name=file_name, text="\n".join(lines)))
    return out


# ----------------------------------------------------------------------
# Dispatch + disk
# ----------------------------------------------------------------------

_FAMILIES = {
    "iostream": iostream_corpus,
    "gui": gui_corpus,
    "template": template_corpus,
}


def make_corpus(family: str, **kwargs) -> list[CorpusFile]:
    """Build a named corpus family (``iostream``, ``gui`` or
    ``template``) with its keyword parameters."""
    try:
        builder = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown corpus family {family!r} "
            f"(have: {', '.join(sorted(_FAMILIES))})"
        ) from None
    return builder(**kwargs)


def write_corpus(
    corpus: list[CorpusFile], out_dir: Union[str, Path]
) -> list[Path]:
    """Write a corpus to disk; returns the paths in ingest order."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for file in corpus:
        path = out_dir / file.name
        path.write_text(file.text)
        paths.append(path)
    return paths
