"""Parameterised hierarchy generators for tests and benchmarks.

Families:

* ``chain(n)`` / ``binary_tree(depth)`` — unambiguous hierarchies for the
  linear-time claim (Section 5, common case).
* ``nonvirtual_diamond_ladder(k)`` — a stack of k non-virtual diamonds:
  the root occurs in ``2^k`` subobjects of the apex, the paper's
  exponential-blow-up family (Section 7.1).
* ``virtual_diamond_ladder(k)`` — the same shape with virtual joins: one
  shared subobject per class.
* ``ambiguous_fan(width)`` — many conflicting definitions merging into
  one class: exercises the quadratic worst case (blue-set unions).
* ``random_hierarchy(...)`` — seeded layered DAGs with a controllable
  virtual-edge fraction and member density; used by the property tests
  and the "practice-like" benchmark (Section 7.1's closing remark).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.hierarchy.builder import HierarchyBuilder
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Member


def chain(n: int, *, member_every: int = 1, member: str = "m") -> ClassHierarchyGraph:
    """A single-inheritance chain ``C0 <- C1 <- ... <- C(n-1)``.

    Every ``member_every``-th class declares ``member`` (hiding its
    bases' declaration), so every lookup is unambiguous.
    """
    if n < 1:
        raise ValueError("chain needs at least one class")
    builder = HierarchyBuilder()
    for i in range(n):
        members = [member] if i % member_every == 0 else []
        bases = [f"C{i - 1}"] if i > 0 else []
        builder.cls(f"C{i}", bases=bases, members=members)
    return builder.build()


def binary_tree(depth: int, *, member: str = "m") -> ClassHierarchyGraph:
    """A complete binary tree of single-inheritance classes, rooted at a
    single base declaring ``member``; ``2^depth - 1`` classes, all
    lookups unambiguous."""
    if depth < 1:
        raise ValueError("tree needs depth >= 1")
    builder = HierarchyBuilder()
    builder.cls("N1", members=[member])
    for i in range(2, 2**depth):
        builder.cls(f"N{i}", bases=[f"N{i // 2}"])
    return builder.build()


def nonvirtual_diamond_ladder(
    k: int, *, member: str = "m"
) -> ClassHierarchyGraph:
    """``k`` stacked non-virtual diamonds.

    Layer 0 is the root ``R`` (declaring ``member``); each layer ``i``
    adds ``Li_l`` and ``Li_r`` deriving from the previous join and a join
    ``Ji`` deriving from both.  The apex ``J_k`` contains ``2^k`` root
    subobjects, so every lookup of ``member`` above layer 0 is ambiguous
    and the subobject graph is exponential in ``k``.
    """
    if k < 1:
        raise ValueError("ladder needs at least one diamond")
    builder = HierarchyBuilder()
    builder.cls("R", members=[member])
    below = "R"
    for i in range(1, k + 1):
        builder.cls(f"L{i}l", bases=[below])
        builder.cls(f"L{i}r", bases=[below])
        builder.cls(f"J{i}", bases=[f"L{i}l", f"L{i}r"])
        below = f"J{i}"
    return builder.build()


def virtual_diamond_ladder(k: int, *, member: str = "m") -> ClassHierarchyGraph:
    """The same ladder with virtual joins: each pair of arms inherits the
    class below *virtually*, so every class has exactly one subobject per
    base class and all lookups are unambiguous."""
    if k < 1:
        raise ValueError("ladder needs at least one diamond")
    builder = HierarchyBuilder()
    builder.cls("R", members=[member])
    below = "R"
    for i in range(1, k + 1):
        builder.cls(f"L{i}l", virtual_bases=[below])
        builder.cls(f"L{i}r", virtual_bases=[below])
        builder.cls(f"J{i}", bases=[f"L{i}l", f"L{i}r"])
        below = f"J{i}"
    return builder.build()


def ambiguous_fan(width: int, *, member: str = "m") -> ClassHierarchyGraph:
    """``width`` root classes, each declaring ``member``, all inherited
    (non-virtually) by a single derived class ``Join`` — a maximally
    ambiguous merge whose blue set holds ``width`` abstractions."""
    if width < 2:
        raise ValueError("fan needs width >= 2")
    builder = HierarchyBuilder()
    for i in range(width):
        builder.cls(f"B{i}", members=[member])
    builder.cls("Join", bases=[f"B{i}" for i in range(width)])
    return builder.build()


def deep_ambiguous_ladder(
    k: int, *, member: str = "m"
) -> ClassHierarchyGraph:
    """A non-virtual ladder followed by a chain, so the (large) blue sets
    are dragged through many further classes — stresses the
    ``O(|N| * (|N| + |E|))`` worst case of Section 5."""
    builder = HierarchyBuilder()
    builder.cls("R", members=[member])
    below = "R"
    for i in range(1, k + 1):
        builder.cls(f"L{i}l", bases=[below])
        builder.cls(f"L{i}r", bases=[below])
        builder.cls(f"J{i}", bases=[f"L{i}l", f"L{i}r"])
        below = f"J{i}"
    for i in range(k):
        builder.cls(f"T{i}", bases=[below])
        below = f"T{i}"
    return builder.build()


def blue_heavy_hierarchy(
    width: int, tail: int, *, member: str = "m"
) -> ClassHierarchyGraph:
    """The worst-case regime of Section 5 made concrete.

    ``width`` roots each declare ``member`` and are inherited *virtually*
    by one middle class each, so the definitions reach the join with
    ``width`` pairwise-distinct ``leastVirtual`` abstractions — a blue
    set of size Θ(|N|) that is then re-propagated through every class of
    a ``tail``-long chain, exhibiting the O(|N| * (|N| + |E|)) bound.
    """
    if width < 2:
        raise ValueError("need width >= 2")
    builder = HierarchyBuilder()
    for i in range(width):
        builder.cls(f"R{i}", members=[member])
        builder.cls(f"M{i}", virtual_bases=[f"R{i}"])
    builder.cls("Join", bases=[f"M{i}" for i in range(width)])
    below = "Join"
    for i in range(tail):
        builder.cls(f"T{i}", bases=[below])
        below = f"T{i}"
    return builder.build()


def random_hierarchy(
    n: int,
    *,
    seed: int,
    max_bases: int = 3,
    virtual_probability: float = 0.3,
    member_names: Sequence[str] = ("m", "f", "g"),
    member_probability: float = 0.4,
    static_probability: float = 0.0,
) -> ClassHierarchyGraph:
    """A seeded random DAG hierarchy.

    Classes are created in order ``K0 .. K(n-1)``; each picks up to
    ``max_bases`` distinct bases among the earlier classes (so the result
    is acyclic by construction), each edge virtual with the given
    probability, and declares each member name independently with
    ``member_probability`` (static with ``static_probability``).
    """
    rng = random.Random(seed)
    builder = HierarchyBuilder()
    for i in range(n):
        members = []
        for name in member_names:
            if rng.random() < member_probability:
                members.append(
                    Member(
                        name=name,
                        is_static=rng.random() < static_probability,
                    )
                )
        bases: list[str] = []
        virtual_bases: list[str] = []
        if i > 0:
            count = rng.randint(0, min(max_bases, i))
            picks = rng.sample(range(i), count)
            for pick in picks:
                if rng.random() < virtual_probability:
                    virtual_bases.append(f"K{pick}")
                else:
                    bases.append(f"K{pick}")
        builder.cls(
            f"K{i}", bases=bases, virtual_bases=virtual_bases, members=members
        )
    return builder.build()


def layered_hierarchy(
    layers: int,
    width: int,
    *,
    seed: int,
    max_bases: int = 3,
    virtual_probability: float = 0.3,
    cross_layer_probability: float = 0.15,
    member_names: Sequence[str] = ("m", "f", "g"),
    member_probability: float = 0.4,
) -> ClassHierarchyGraph:
    """A seeded layered DAG: ``width`` classes per layer, ``layers`` deep.

    Layer 0 classes are roots; every class of layer ``i > 0`` inherits
    from 1..``max_bases`` classes of layer ``i-1`` (each pick jumping to
    a uniformly chosen *earlier* layer with ``cross_layer_probability``,
    so long skip edges occur), each edge virtual with
    ``virtual_probability``, and declares each member name independently
    with ``member_probability``.

    This is the large-hierarchy stress shape of the C3-linearisation
    literature (wide, deep, densely joined DAGs) with every knob the
    differential fuzzing campaign (:mod:`repro.fuzz.campaign`) draws on
    exposed: guaranteed depth (unlike :func:`random_hierarchy`, whose
    base picks often leave most classes as roots), controllable fan-in,
    virtual-edge fraction and member density.  Classes are named
    ``L<layer>_<index>``.
    """
    if layers < 1 or width < 1:
        raise ValueError("layered hierarchy needs layers >= 1 and width >= 1")
    rng = random.Random(seed)
    builder = HierarchyBuilder()
    for layer in range(layers):
        for index in range(width):
            members = [
                name
                for name in member_names
                if rng.random() < member_probability
            ]
            bases: list[str] = []
            virtual_bases: list[str] = []
            if layer > 0:
                count = rng.randint(1, max(1, min(max_bases, width)))
                picked: set[str] = set()
                for _ in range(count):
                    source_layer = layer - 1
                    if layer > 1 and rng.random() < cross_layer_probability:
                        source_layer = rng.randint(0, layer - 2)
                    base = f"L{source_layer}_{rng.randint(0, width - 1)}"
                    if base in picked:
                        continue
                    picked.add(base)
                    if rng.random() < virtual_probability:
                        virtual_bases.append(base)
                    else:
                        bases.append(base)
            builder.cls(
                f"L{layer}_{index}",
                bases=bases,
                virtual_bases=virtual_bases,
                members=members,
            )
    return builder.build()


def wide_unambiguous(
    width: int, *, member: str = "m"
) -> ClassHierarchyGraph:
    """One root declaring ``member``, inherited *virtually* by ``width``
    classes which are all joined: large fan-in yet unambiguous (the
    shared virtual subobject)."""
    if width < 2:
        raise ValueError("fan needs width >= 2")
    builder = HierarchyBuilder()
    builder.cls("R", members=[member])
    for i in range(width):
        builder.cls(f"B{i}", virtual_bases=["R"])
    builder.cls("Join", bases=[f"B{i}" for i in range(width)])
    return builder.build()


def grid(width: int, height: int, *, member: str = "m") -> ClassHierarchyGraph:
    """A ``width x height`` grid: class ``G_x_y`` derives from its left
    and upper neighbours (non-virtually).  Path counts grow as binomial
    coefficients — a dense multiple-inheritance stress case.  The origin
    declares ``member``."""
    builder = HierarchyBuilder()
    for y in range(height):
        for x in range(width):
            bases = []
            if x > 0:
                bases.append(f"G_{x - 1}_{y}")
            if y > 0:
                bases.append(f"G_{x}_{y - 1}")
            members = [member] if x == 0 and y == 0 else []
            builder.cls(f"G_{x}_{y}", bases=bases, members=members)
    return builder.build()
