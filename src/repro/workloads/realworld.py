"""Hand-modelled "practice-like" hierarchies.

The paper closes Section 7.1 observing that real-world hierarchies do
not exhibit the exponential subobject blow-up, so the interesting
comparison is constant factors on practice-like shapes.  These two
workloads model the shapes that actually occur:

* :func:`gui_toolkit` — a windowing library: one deep single-inheritance
  spine (EventTarget -> Object -> Widget -> ... ) plus capability mixins
  (Clickable, Scrollable, Serializable, Styleable) inherited virtually
  by mid-level classes, with the occasional diamond join.
* :func:`interface_heavy` — a CORBA/COM-flavoured shape: many small pure
  interfaces, implementation classes inheriting a handful of them
  virtually, and a few non-virtual utility bases.
"""

from __future__ import annotations

from repro.hierarchy.builder import HierarchyBuilder
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Member, MemberKind


def _fn(name: str) -> Member:
    return Member(name, kind=MemberKind.FUNCTION)


def gui_toolkit() -> ClassHierarchyGraph:
    """A 33-class windowing-toolkit hierarchy with virtual mixins."""
    b = HierarchyBuilder()
    # Core spine.
    b.cls("Object", members=[_fn("hash"), _fn("clone"), _fn("to_string")])
    b.cls("EventTarget", bases=["Object"], members=[_fn("dispatch")])
    b.cls("Widget", bases=["EventTarget"],
          members=[_fn("paint"), _fn("resize"), Member("bounds")])
    # Capability mixins (virtual everywhere, like real toolkits).
    b.cls("Clickable", members=[_fn("click")])
    b.cls("Scrollable", members=[_fn("scroll")])
    b.cls("Serializable", members=[_fn("save"), _fn("load")])
    b.cls("Styleable", members=[_fn("style"), Member("theme")])
    b.cls("Focusable", members=[_fn("focus"), _fn("blur")])
    # Mid-level widgets.
    b.cls("Control", bases=["Widget"], virtual_bases=["Focusable"],
          members=[_fn("enable"), _fn("disable")])
    b.cls("Container", bases=["Widget"], members=[_fn("add"), _fn("remove")])
    b.cls("Button", bases=["Control"], virtual_bases=["Clickable"],
          members=[_fn("paint")])
    b.cls("Label", bases=["Widget"], members=[Member("text")])
    b.cls("TextInput", bases=["Control"], virtual_bases=["Serializable"],
          members=[_fn("paint"), Member("text")])
    b.cls("Panel", bases=["Container"], virtual_bases=["Styleable"])
    b.cls("ScrollPanel", bases=["Panel"], virtual_bases=["Scrollable"],
          members=[_fn("paint")])
    b.cls("ListView", bases=["Container"],
          virtual_bases=["Scrollable", "Clickable"],
          members=[_fn("paint"), _fn("select")])
    b.cls("TreeView", bases=["ListView"], members=[_fn("expand")])
    b.cls("ComboBox", bases=["Control"],
          virtual_bases=["Clickable", "Scrollable"],
          members=[_fn("select")])
    # Dialog diamond: both arms style themselves.
    b.cls("Window", bases=["Container"], virtual_bases=["Styleable"],
          members=[_fn("show"), _fn("hide")])
    b.cls("Dialog", bases=["Window"], members=[_fn("show")])
    b.cls("Alert", bases=["Dialog"], virtual_bases=["Clickable"])
    # Toolbar etc.
    b.cls("Toolbar", bases=["Panel"], members=[_fn("add")])
    b.cls("StatusBar", bases=["Panel"], members=[Member("text")])
    b.cls("MenuItem", bases=["Control"], virtual_bases=["Clickable"],
          members=[Member("text")])
    b.cls("Menu", bases=["Container"], virtual_bases=["Clickable"])
    b.cls("MenuBar", bases=["Menu"])
    b.cls("CheckBox", bases=["Button"], members=[Member("checked")])
    b.cls("RadioButton", bases=["CheckBox"], members=[_fn("select")])
    b.cls("IconButton", bases=["Button"], virtual_bases=["Styleable"])
    b.cls("SplitPanel", bases=["Panel"], members=[_fn("resize")])
    b.cls("TabPanel", bases=["Panel"], virtual_bases=["Clickable"],
          members=[_fn("select")])
    # A deliberately awkward join: editor is both a text input and a
    # scroll panel (Widget arrives twice, NON-virtually -> duplication).
    b.cls("RichTextEditor", bases=["TextInput", "ScrollPanel"],
          members=[_fn("paint")])
    b.cls("CodeEditor", bases=["RichTextEditor"], members=[_fn("highlight")])
    return b.build()


def interface_heavy(
    *, implementations: int = 8, interfaces: int = 10
) -> ClassHierarchyGraph:
    """COM-style: ``interfaces`` small pure interfaces (all virtually
    derived from IUnknown), ``implementations`` classes each inheriting
    three of them virtually plus a non-virtual utility base."""
    b = HierarchyBuilder()
    b.cls("IUnknown", members=[_fn("query"), _fn("addref"), _fn("release")])
    for i in range(interfaces):
        b.cls(f"I{i}", virtual_bases=["IUnknown"], members=[_fn(f"method{i}")])
    b.cls("RefCounted", members=[_fn("addref"), _fn("release"),
                                 Member("count")])
    for j in range(implementations):
        picks = [f"I{(j + k) % interfaces}" for k in range(3)]
        b.cls(
            f"Impl{j}",
            bases=["RefCounted"],
            virtual_bases=picks,
            members=[_fn("query")] + [_fn(f"method{(j + k) % interfaces}")
                                      for k in range(3)],
        )
    b.cls("Aggregate", bases=[f"Impl{j}" for j in range(min(2, implementations))])
    return b.build()
