"""The paper's worked examples as ready-made hierarchies.

Each ``figureN`` function returns the CHG of the corresponding figure;
``figureN_source`` returns the same program as C++ text for the frontend.
The expected lookup outcomes (stated in the paper) are recorded in
``FIGURE_EXPECTATIONS`` and asserted by tests and benchmarks.
"""

from __future__ import annotations

from repro.hierarchy.builder import HierarchyBuilder
from repro.hierarchy.graph import ClassHierarchyGraph
from repro.hierarchy.members import Member, MemberKind


def _fn(name: str) -> Member:
    """A member function, as the figures declare (``void m();``)."""
    return Member(name, kind=MemberKind.FUNCTION)


def figure1() -> ClassHierarchyGraph:
    """Figure 1: non-virtual inheritance.

    ``class A { void m(); }; class B : A {}; class C : B {};
    class D : B { void m(); }; class E : C, D {};``

    ``lookup(E, m)`` is **ambiguous**: an ``E`` object contains two ``A``
    (and two ``B``) subobjects, and ``D::m`` dominates only the copy of
    ``A::m`` on its own side.
    """
    return (
        HierarchyBuilder()
        .cls("A", members=[_fn("m")])
        .cls("B", bases=["A"])
        .cls("C", bases=["B"])
        .cls("D", bases=["B"], members=[_fn("m")])
        .cls("E", bases=["C", "D"])
        .build()
    )


def figure1_source() -> str:
    """The C++ source text of Figure 1's program."""
    return """
    class A { void m(); };
    class B : A {};
    class C : B {};
    class D : B { void m(); };
    class E : C, D {};
    """


def figure2() -> ClassHierarchyGraph:
    """Figure 2: the same program with virtual inheritance.

    ``class C : virtual B {}; class D : virtual B { void m(); };``

    Now an ``E`` object has a single shared ``B`` (hence ``A``) subobject
    and ``lookup(E, m)`` **unambiguously** resolves to ``D::m``.
    """
    return (
        HierarchyBuilder()
        .cls("A", members=[_fn("m")])
        .cls("B", bases=["A"])
        .cls("C", virtual_bases=["B"])
        .cls("D", virtual_bases=["B"], members=[_fn("m")])
        .cls("E", bases=["C", "D"])
        .build()
    )


def figure2_source() -> str:
    """The C++ source text of Figure 2's program."""
    return """
    class A { void m(); };
    class B : A {};
    class C : virtual B {};
    class D : virtual B { void m(); };
    class E : C, D {};
    """


def figure3() -> ClassHierarchyGraph:
    """Figure 3: the running example of Sections 3-5.

    Reconstructed from the paper's stated facts: the four paths from
    ``A`` to ``H`` are ``ABDFH, ABDGH, ACDFH, ACDGH`` with
    ``fixed(ABDFH) = ABD`` and ``fixed(ACDFH) = ACD`` (so ``D -> F`` and
    ``D -> G`` are the virtual edges);
    ``Defns(H, foo) = {{ABDFH, ABDGH}, {ACDFH, ACDGH}, {GH}}`` (``foo``
    declared in ``A`` and ``G``); and
    ``Defns(H, bar) = {{EFH}, {DFH, DGH}, {GH}}`` (``bar`` declared in
    ``E``, ``D`` and ``G``).

    Expected results (Sections 3-4): ``lookup(H, foo) = {GH}`` and
    ``lookup(H, bar) = ⊥``; the lookups for both members are ambiguous
    at ``F``.
    """
    return (
        HierarchyBuilder()
        .cls("A", members=[_fn("foo")])
        .cls("B", bases=["A"])
        .cls("C", bases=["A"])
        .cls("D", bases=["B", "C"], members=[_fn("bar")])
        .cls("E", members=[_fn("bar")])
        .cls("F", bases=["E"], virtual_bases=["D"])
        .cls("G", virtual_bases=["D"], members=[_fn("foo"), _fn("bar")])
        .cls("H", bases=["F", "G"])
        .build()
    )


def figure3_source() -> str:
    """The C++ source text of Figure 3's program."""
    return """
    class A { void foo(); };
    class B : A {};
    class C : A {};
    class D : B, C { void bar(); };
    class E { void bar(); };
    class F : E, virtual D {};
    class G : virtual D { void foo(); void bar(); };
    class H : F, G {};
    """


def figure9() -> ClassHierarchyGraph:
    """Figure 9: the counterexample to the g++ 2.7.2.1 lookup.

    ``struct S { int m; }; struct A : virtual S { int m; };
    struct B : virtual S { int m; };
    struct C : virtual A, virtual B { int m; };
    struct D : C {}; struct E : virtual A, virtual B, D {};``

    ``lookup(E, m)`` is **unambiguous** (``C::m`` dominates ``A::m``,
    ``B::m`` and ``S::m``), but a breadth-first scan meets ``A::m`` and
    ``B::m`` first, neither of which dominates the other, and wrongly
    reports ambiguity.
    """
    return (
        HierarchyBuilder()
        .cls("S", members=["m"], is_struct=True)
        .cls("A", virtual_bases=["S"], members=["m"], is_struct=True)
        .cls("B", virtual_bases=["S"], members=["m"], is_struct=True)
        .cls("C", virtual_bases=["A", "B"], members=["m"], is_struct=True)
        .cls("D", bases=["C"], is_struct=True)
        .cls("E", is_struct=True)
        # Base order matters for the g++ breadth-first baseline; keep the
        # program's declaration order: virtual A, virtual B, D.
        .edge("A", "E", virtual=True)
        .edge("B", "E", virtual=True)
        .edge("D", "E")
        .build()
    )


def figure9_source() -> str:
    """The C++ source text of Figure 9's program."""
    return """
    struct S { int m; };
    struct A : virtual S { int m; };
    struct B : virtual S { int m; };
    struct C : virtual A, virtual B { int m; };
    struct D : C {};
    struct E : virtual A, virtual B, D {};
    """


def iostream_like() -> ClassHierarchyGraph:
    """A realistic virtual-inheritance diamond modelled on the classic
    iostream hierarchy — the textbook motivation for virtual bases."""
    return (
        HierarchyBuilder()
        .cls("ios_base", members=[_fn("flags"), _fn("precision")])
        .cls("ios", bases=["ios_base"], members=[_fn("rdstate"), _fn("clear")])
        .cls("istream", virtual_bases=["ios"], members=[_fn("get"), _fn("read")])
        .cls("ostream", virtual_bases=["ios"], members=[_fn("put"), _fn("write")])
        .cls("iostream", bases=["istream", "ostream"])
        .cls("fstream", bases=["iostream"], members=[_fn("open"), _fn("close")])
        .build()
    )


#: Expected outcomes stated in the paper, keyed by (figure, class, member):
#: value is the declaring class for unique lookups or None for ambiguous.
FIGURE_EXPECTATIONS: dict[tuple[str, str, str], str | None] = {
    ("figure1", "E", "m"): None,
    ("figure2", "E", "m"): "D",
    ("figure3", "H", "foo"): "G",
    ("figure3", "H", "bar"): None,
    ("figure3", "F", "foo"): None,
    ("figure3", "F", "bar"): None,
    ("figure9", "E", "m"): "C",
    ("figure9", "D", "m"): "C",
}


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure9": figure9,
}

FIGURE_SOURCES = {
    "figure1": figure1_source,
    "figure2": figure2_source,
    "figure3": figure3_source,
    "figure9": figure9_source,
}
